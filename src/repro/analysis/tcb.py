"""TCB accounting — the paper's ~44% trusted-code-base reduction claim.

Section IV: "By manually porting the PM and ML libraries via separation
into trusted and untrusted components, Plinius achieved a TCB reduction
of ~44% in terms of LOC" (relative to running everything inside the
enclave, as a libOS/SCONE design would).

This module applies the same partitioning to *this* repository: each
module is classified as trusted (would run inside the enclave) or
untrusted (helper code outside), lines of code are counted, and the
reduction versus an all-in-enclave design is reported.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

#: Modules whose code runs inside the enclave under Plinius'
#: partitioning (lib-sgx-romulus, lib-sgx-darknet, the mirroring module,
#: the encryption engine, the PM-data module, sealing).
TRUSTED_MODULES = (
    "repro.romulus.region",
    "repro.romulus.transaction",
    "repro.romulus.log",
    "repro.romulus.alloc",
    "repro.darknet.activations",
    "repro.darknet.im2col",
    "repro.darknet.layers.base",
    "repro.darknet.layers.convolutional",
    "repro.darknet.layers.connected",
    "repro.darknet.layers.pooling",
    "repro.darknet.layers.dropout",
    "repro.darknet.layers.softmax",
    "repro.darknet.network",
    "repro.darknet.arena",
    "repro.darknet.train",
    "repro.darknet.inference",
    "repro.darknet.weights",
    "repro.crypto.aes",
    "repro.crypto.gcm",
    "repro.crypto.backend",
    "repro.crypto.engine",
    "repro.sgx.sealing",
    "repro.sgx.rand",
    "repro.sgx.counters",
    "repro.core.mirror",
    "repro.core.pm_data",
    "repro.core.trainer",
    "repro.core.freshness",
    "repro.core.serving",
    "repro.minitf.model",
    "repro.minitf.autograd",
    "repro.minitf.ops",
    "repro.minitf.mirroring",
    "repro.distributed.worker",
    "repro.romulus.undolog",
    # Federated aggregation enclave: Merkle commitment, the
    # deterministic FedAvg merge, and the round ledger all run over
    # unsealed deltas, so they live inside the aggregator enclave.
    "repro.federated.merkle",
    "repro.federated.aggregate",
    "repro.federated.ledger",
)

#: Modules kept outside the enclave (sgx-romulus-helper,
#: sgx-darknet-helper, config parsing, data loading, device management,
#: attestation plumbing, the spot simulator).
UNTRUSTED_MODULES = (
    "repro.darknet.cfg",
    "repro.darknet.data",
    "repro.data.mnist",
    "repro.hw.intervals",
    "repro.hw.pmem",
    "repro.hw.ssd",
    "repro.hw.dram",
    "repro.hw.fio",
    "repro.sgx.enclave",
    "repro.sgx.ecall",
    "repro.sgx.attestation",
    "repro.romulus.runtime",
    "repro.romulus.sps",
    "repro.core.checkpoint",
    "repro.core.models",
    "repro.core.system",
    "repro.core.workflow",
    "repro.spot.traces",
    "repro.spot.simulator",
    "repro.simtime.clock",
    "repro.simtime.costs",
    "repro.simtime.profiles",
    "repro.distributed.link",
    "repro.distributed.data_parallel",
    "repro.distributed.pipeline",
    "repro.gpu.device",
    "repro.gpu.offload",
    "repro.obs.recorder",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.context",
    "repro.obs.hist",
    "repro.obs.slo",
    "repro.obs.flight",
    "repro.obs.report",
    "repro.analysis.tcb",
    "repro.analysis.lint.framework",
    "repro.analysis.lint.config",
    "repro.analysis.lint.rules_pm",
    "repro.analysis.lint.rules_sec",
    "repro.analysis.lint.rules_det",
    "repro.analysis.lint.rules_alloc",
    "repro.analysis.lint.rules_lck",
    "repro.analysis.lint.rules_flt",
    "repro.analysis.lint.reporters",
    "repro.analysis.lint.runner",
    "repro.analysis.flow.project",
    "repro.analysis.flow.callgraph",
    "repro.analysis.flow.taint",
    "repro.analysis.flow.durability",
    "repro.analysis.flow.lockset",
    "repro.analysis.flow.engine",
    "repro.cli",
    # Fault-injection harness: drives the system from the operator /
    # attacker position, hence outside the enclave TCB.
    "repro.faults.registry",
    "repro.faults.plan",
    "repro.faults.invariants",
    "repro.faults.workload",
    "repro.faults.explorer",
    "repro.faults.mutations",
    # Inference gateway tier: handles only sealed bytes, so batching,
    # admission, and replica scheduling stay outside the enclave TCB.
    "repro.serving.gateway",
    "repro.serving.batcher",
    "repro.serving.replica_pool",
    "repro.serving.admission",
    # Simulated-cluster substrate: hosts, network, event loop — the
    # operator-side machinery around the enclaves, outside the TCB.
    "repro.cluster.loop",
    "repro.cluster.host",
    "repro.cluster.network",
    "repro.cluster.link",
    "repro.cluster.worker",
    "repro.cluster.fabric",
    "repro.cluster.runtime",
    # Federated orchestration: round driving, shard assembly, and the
    # session/host wiring run operator-side.  Only merkle/aggregate/
    # ledger (the commitment + merge math the aggregator enclave runs
    # over unsealed deltas) stay trusted.
    "repro.federated.client",
    "repro.federated.coordinator",
    "repro.federated.session",
    "repro.federated.shards",
)

#: Extra runtime LoC an all-in-enclave design drags in.  The paper's
#: ~44% figure compares its partitioned TCB against running *its own*
#: code entirely inside the enclave, so the default here is 0; a real
#: libOS (Graphene, SCONE) would add tens of thousands more lines,
#: making the reduction even larger.
LIBOS_RUNTIME_LOC = 0


@dataclass(frozen=True)
class TcbReport:
    """LoC accounting of the trusted/untrusted partitioning."""

    trusted_loc: int
    untrusted_loc: int
    per_module: Dict[str, Tuple[str, int]]  # module -> (side, loc)
    libos_runtime_loc: int = LIBOS_RUNTIME_LOC

    @property
    def total_loc(self) -> int:
        return self.trusted_loc + self.untrusted_loc

    @property
    def libos_tcb_loc(self) -> int:
        """TCB of the all-in-enclave (libOS) alternative."""
        return self.total_loc + self.libos_runtime_loc

    @property
    def reduction(self) -> float:
        """Fractional TCB reduction vs. the libOS design (paper: ~0.44)."""
        return 1.0 - self.trusted_loc / self.libos_tcb_loc

    def summary(self) -> str:
        return (
            f"trusted {self.trusted_loc} LoC / untrusted "
            f"{self.untrusted_loc} LoC; all-in-enclave TCB would be "
            f"{self.libos_tcb_loc} LoC -> reduction {self.reduction:.1%}"
        )


def count_loc(path: Path) -> int:
    """Count non-blank, non-comment, non-docstring-only source lines."""
    loc = 0
    in_docstring = False
    delimiter = ""
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if in_docstring:
            if delimiter in line:
                in_docstring = False
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith(('"""', "'''")):
            delimiter = line[:3]
            # Single-line docstring?
            if not (line.endswith(delimiter) and len(line) >= 6):
                in_docstring = True
            continue
        loc += 1
    return loc


def _module_loc(module_name: str) -> int:
    module = importlib.import_module(module_name)
    if module.__file__ is None:
        raise ValueError(f"module {module_name} has no source file")
    return count_loc(Path(module.__file__))


def tcb_report() -> TcbReport:
    """Compute the TCB partitioning report for this repository."""
    per_module: Dict[str, Tuple[str, int]] = {}
    trusted = 0
    for name in TRUSTED_MODULES:
        loc = _module_loc(name)
        per_module[name] = ("trusted", loc)
        trusted += loc
    untrusted = 0
    for name in UNTRUSTED_MODULES:
        loc = _module_loc(name)
        per_module[name] = ("untrusted", loc)
        untrusted += loc
    return TcbReport(
        trusted_loc=trusted, untrusted_loc=untrusted, per_module=per_module
    )


def render_report(report: TcbReport) -> str:
    """Human-readable table of the partitioning."""
    lines: List[str] = ["module                                   side       LoC"]
    for name, (side, loc) in sorted(report.per_module.items()):
        lines.append(f"{name:40s} {side:9s} {loc:5d}")
    lines.append("-" * 58)
    lines.append(report.summary())
    return "\n".join(lines)


def render_report_json(report: TcbReport) -> str:
    """Machine-readable report (the ``tcb --format json`` shape)."""
    payload = {
        "trusted_loc": report.trusted_loc,
        "untrusted_loc": report.untrusted_loc,
        "total_loc": report.total_loc,
        "libos_runtime_loc": report.libos_runtime_loc,
        "libos_tcb_loc": report.libos_tcb_loc,
        "reduction": round(report.reduction, 4),
        "modules": [
            {"module": name, "side": side, "loc": loc}
            for name, (side, loc) in sorted(report.per_module.items())
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
