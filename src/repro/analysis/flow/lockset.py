"""RACE001 — interprocedural lockset race detection (Eraser-style).

LCK001 checks lock discipline *lexically*: a mutation of a guarded
field must sit inside ``with self._lock``.  That misses the shape of
the PR 7 flight-ring bug — a mutation in a method that is itself only
ever called with the lock already held is fine, while a lexically
identical mutation on a path entered from a worker thread races.

This pass computes, per write access to a candidate field, the set of
locks *known held* at that program point:

* **lexical** locks — enclosing ``with self.<lock>`` blocks;
* **held-at-entry** locks — a fixpoint over same-class call sites: a
  private helper only invoked under the lock inherits it; any method
  that is externally callable, uncalled, or a thread entry point
  starts with the empty set.

A field is *shared* when at least one access to it happens in a
function reachable from a thread root (``pool.map``/``executor.submit``
arguments, ``threading.Thread(target=...)``, gateway
``schedule_call`` callbacks).  For each shared field the rule
intersects the locksets of **all write accesses**; an empty
intersection means no single lock orders the writes, and every access
with an empty lockset is reported.

Exemptions keep the rule honest on real code:

* fields assigned only in ``__init__``-like constructors (publication
  via object construction);
* lock attributes themselves and ``threading.local()`` storage;
* fields whose inferred type is a project class owning its own lock
  (internally synchronized — e.g. a counter registry guarding itself).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    Project,
    _self_attr,
)
from repro.analysis.lint.config import MUTATING_METHODS, LintConfig
from repro.analysis.lint.framework import Finding, Severity

RULE_ID = "RACE001"
SEVERITY = Severity.ERROR
TITLE = "shared field written without a consistent lock"

#: Methods that run before the object is visible to other threads.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class Access:
    """One write access to ``self.<field>``."""

    field: str
    fn: FunctionInfo
    node: ast.AST
    lexical: FrozenSet[str]


class LocksetAnalysis:
    """Held-lock fixpoint + shared-field intersection."""

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config
        self._worker_reachable = graph.reachable_from_roots()
        #: qualname -> locks held at entry (None = not yet constrained).
        self._entry: Dict[str, Optional[FrozenSet[str]]] = {}

    # ------------------------------------------------------------------
    # Access collection
    # ------------------------------------------------------------------
    def _class_functions(self, cls: ClassInfo) -> List[FunctionInfo]:
        return [
            fn
            for fn in self.project.functions.values()
            if fn.owner is not None and fn.owner.qualname == cls.qualname
        ]

    def _is_exempt_field(self, cls: ClassInfo, field: str) -> bool:
        if field in cls.lock_attrs or field in cls.thread_local_attrs:
            return True
        type_qualname = cls.attr_types.get(field)
        if type_qualname is not None:
            field_cls = self.project.classes.get(type_qualname)
            if field_cls is not None and field_cls.lock_attrs:
                return True  # internally synchronized
        return False

    def _write_accesses(self, cls: ClassInfo) -> List[Access]:
        out: List[Access] = []
        for fn in self._class_functions(cls):
            in_ctor = fn.name in _CONSTRUCTORS and fn.parent is None
            for node in ast.walk(fn.node):
                field = self._written_field(node)
                if field is None:
                    continue
                if self._is_exempt_field(cls, field):
                    continue
                if in_ctor and isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue  # construction-time publication
                out.append(
                    Access(
                        field=field,
                        fn=fn,
                        node=node,
                        lexical=self._lexical_locks(fn, node),
                    )
                )
        return out

    def _written_field(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                field = self._store_target_field(target)
                if field is not None:
                    return field
            return None
        if isinstance(node, ast.AnnAssign):
            return self._store_target_field(node.target)
        if isinstance(node, ast.AugAssign):
            field = _self_attr(node.target)
            if field is not None:
                return field
            return self._store_target_field(node.target)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                return _self_attr(node.func.value)
        return None

    def _store_target_field(self, target: ast.expr) -> Optional[str]:
        direct = _self_attr(target)
        if direct is not None:
            return direct
        if isinstance(target, ast.Subscript):
            return _self_attr(target.value)
        return None

    def _lexical_locks(
        self, fn: FunctionInfo, node: ast.AST
    ) -> FrozenSet[str]:
        locks: Set[str] = set()
        owner = fn.owner
        if owner is None:
            return frozenset()
        current: Optional[ast.AST] = node
        while current is not None and current is not fn.node:
            parent = fn.src.parents.get(id(current))
            if isinstance(parent, ast.With):
                for item in parent.items:
                    lock = self._lock_expr(owner, item.context_expr)
                    if lock is not None:
                        locks.add(lock)
            current = parent
        return frozenset(locks)

    def _lock_expr(self, cls: ClassInfo, expr: ast.expr) -> Optional[str]:
        attr = _self_attr(expr)
        if attr is not None and attr in cls.lock_attrs:
            return attr
        return None

    # ------------------------------------------------------------------
    # Held-at-entry fixpoint
    # ------------------------------------------------------------------
    def entry_locks(self, fn: FunctionInfo) -> FrozenSet[str]:
        cached = self._entry.get(fn.qualname)
        return cached if cached is not None else frozenset()

    def _compute_entry_locks(self, classes: List[ClassInfo]) -> None:
        functions: List[FunctionInfo] = []
        for cls in classes:
            functions.extend(self._class_functions(cls))
        # Seed: thread entries and externally visible methods hold
        # nothing; everything else starts unconstrained (all locks).
        state: Dict[str, Optional[FrozenSet[str]]] = {}
        for fn in functions:
            state[fn.qualname] = None
        for _ in range(len(functions) + 2):
            changed = False
            for fn in functions:
                new = self._entry_meet(fn, state)
                if new != state[fn.qualname]:
                    state[fn.qualname] = new
                    changed = True
            if not changed:
                break
        for qualname, locks in state.items():
            self._entry[qualname] = locks if locks is not None else frozenset()

    def _entry_meet(
        self,
        fn: FunctionInfo,
        state: Dict[str, Optional[FrozenSet[str]]],
    ) -> Optional[FrozenSet[str]]:
        if fn.qualname in self.graph.thread_roots:
            return frozenset()
        sites = self.graph.callers_of.get(fn.qualname, [])
        if not sites:
            return frozenset()  # uncalled: assume external entry
        owner = fn.owner
        meet: Optional[FrozenSet[str]] = None
        for site in sites:
            caller = site.caller
            same_class = (
                owner is not None
                and caller.owner is not None
                and caller.owner.qualname == owner.qualname
            )
            if not same_class:
                return frozenset()  # called from outside the class
            caller_entry = state.get(caller.qualname)
            lexical = self._lexical_locks(caller, site.node)
            if caller_entry is None:
                continue  # unconstrained caller: no restriction yet
            held = caller_entry | lexical
            meet = held if meet is None else (meet & held)
        return meet

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------
    def findings(self) -> Iterator[Finding]:
        classes = [
            cls for cls in self.project.classes.values() if cls.lock_attrs
        ]
        if not classes:
            return
        self._compute_entry_locks(classes)
        for cls in sorted(classes, key=lambda c: c.qualname):
            yield from self._check_class(cls)

    def _check_class(self, cls: ClassInfo) -> Iterator[Finding]:
        accesses = self._write_accesses(cls)
        by_field: Dict[str, List[Access]] = {}
        for access in accesses:
            by_field.setdefault(access.field, []).append(access)
        for field, field_accesses in sorted(by_field.items()):
            shared = any(
                a.fn.qualname in self._worker_reachable
                for a in field_accesses
            )
            if not shared:
                continue
            locksets = [
                a.lexical | self.entry_locks(a.fn) for a in field_accesses
            ]
            common: FrozenSet[str] = locksets[0]
            for lockset in locksets[1:]:
                common &= lockset
            if common:
                continue
            emitted = False
            for access, lockset in zip(field_accesses, locksets):
                if lockset:
                    continue
                emitted = True
                yield Finding(
                    rule_id=RULE_ID,
                    severity=SEVERITY,
                    path=str(access.fn.src.path),
                    line=getattr(access.node, "lineno", 1),
                    col=getattr(access.node, "col_offset", 0),
                    message=(
                        f"field '{field}' of {cls.name} is written on a "
                        "worker-thread-reachable path with no lock held; "
                        "other writes do not share a common lock either "
                        f"(class lock(s): {', '.join(sorted(cls.lock_attrs))})"
                    ),
                    module=access.fn.module,
                )
            if not emitted:
                # Every access holds *a* lock, but not the same one:
                # the writes are still unordered with respect to each
                # other.  Report once, at the first access.
                first = field_accesses[0]
                held = ", ".join(sorted(locksets[0])) or "none"
                yield Finding(
                    rule_id=RULE_ID,
                    severity=SEVERITY,
                    path=str(first.fn.src.path),
                    line=getattr(first.node, "lineno", 1),
                    col=getattr(first.node, "col_offset", 0),
                    message=(
                        f"writes to field '{field}' of {cls.name} hold "
                        "locks, but no single lock is common to all "
                        f"access paths (this write holds: {held})"
                    ),
                    module=first.fn.module,
                )
