"""Whole-program symbol index and lightweight type inference.

The flow engine needs to answer two questions the per-module framework
cannot: *which function does this call land in?* and *what class is
this expression an instance of?*  Both are answered here from purely
static evidence, cheapest first:

* parameter and return **annotations** (``region: RomulusRegion``,
  ``-> "Transaction"`` — string annotations included);
* **constructor assignments** (``self.engine = EncryptionEngine(...)``,
  ``x = FlightRing(cap)``, module-level ``POOL = WorkerPool()``);
* **import aliases** resolved through
  :attr:`~repro.analysis.lint.framework.ModuleSource.import_aliases`.

Anything the evidence does not pin down stays ``None`` — the analyses
degrade to name-based fallbacks rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.lint.framework import ModuleSource

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``self.x = threading.Lock()`` marks ``x`` as a lock attribute.
_LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "multiprocessing.Lock"}
)
#: ``self.x = threading.local()`` marks ``x`` as per-thread storage.
_THREAD_LOCAL_CONSTRUCTORS = frozenset({"threading.local"})


@dataclass
class FunctionInfo:
    """One function or method definition (nested defs included)."""

    qualname: str
    module: str
    name: str
    node: FuncNode
    src: ModuleSource
    owner: Optional["ClassInfo"] = None
    parent: Optional["FunctionInfo"] = None

    @property
    def params(self) -> List[str]:
        """Positional parameter names in declaration order (incl. self)."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]

    @property
    def is_method(self) -> bool:
        return self.owner is not None and self.parent is None

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    """One class definition plus derived attribute knowledge."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    src: ModuleSource
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname, from constructor assignments
    #: and annotated-parameter aliasing in any method.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Attributes holding mutual-exclusion primitives.
    lock_attrs: Set[str] = field(default_factory=set)
    #: Attributes holding ``threading.local`` storage (race-exempt).
    thread_local_attrs: Set[str] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qualname})"


class Project:
    """Parsed view of every module handed to the flow engine."""

    def __init__(self, sources: Sequence[ModuleSource]) -> None:
        self.sources: List[ModuleSource] = list(sources)
        self.modules: Dict[str, ModuleSource] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: (module, attr) -> class qualname for module-level instances.
        self.module_attr_types: Dict[Tuple[str, str], str] = {}
        self._env_cache: Dict[str, Dict[str, str]] = {}
        self._env_in_progress: Set[str] = set()
        for src in self.sources:
            # Last writer wins on duplicate module names (fixtures may
            # shadow; real packages never collide).
            self.modules[src.module] = src
        for src in self.sources:
            self._index_module(src)
        for src in self.sources:
            self._index_module_attrs(src)
        for cls in self.classes.values():
            self._derive_attr_types(cls)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` into one project."""
        from repro.analysis.lint.runner import discover_files

        sources: List[ModuleSource] = []
        for path in discover_files(paths):
            try:
                sources.append(ModuleSource.load(path))
            except SyntaxError:
                continue  # unparseable files are reported by other tools
        return cls(sources)

    def _index_module(self, src: ModuleSource) -> None:
        for stmt in src.tree.body if isinstance(src.tree, ast.Module) else []:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(src, stmt, prefix=src.module)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(src, stmt)

    def _index_class(self, src: ModuleSource, node: ast.ClassDef) -> None:
        qualname = f"{src.module}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=src.module,
            node=node,
            src=src,
            base_names=[b for b in map(src.dotted, node.bases) if b],
        )
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(src, stmt, prefix=qualname, owner=info)
                info.methods[stmt.name] = fn
                self.methods_by_name.setdefault(stmt.name, []).append(fn)

    def _index_function(
        self,
        src: ModuleSource,
        node: FuncNode,
        prefix: str,
        owner: Optional[ClassInfo] = None,
        parent: Optional[FunctionInfo] = None,
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=src.module,
            name=node.name,
            node=node,
            src=src,
            owner=owner,
            parent=parent,
        )
        self.functions[qualname] = info
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Direct children only: deeper nesting recurses.
                if self._enclosing_def(node, stmt) is node:
                    self._index_function(
                        src, stmt, prefix=qualname, owner=owner, parent=info
                    )
        return info

    @staticmethod
    def _enclosing_def(root: FuncNode, target: ast.AST) -> Optional[ast.AST]:
        """Innermost function def under ``root`` containing ``target``."""
        best: Optional[ast.AST] = None

        def visit(node: ast.AST, current: ast.AST) -> None:
            nonlocal best
            for child in ast.iter_child_nodes(node):
                if child is target:
                    best = current
                    return
                nxt = (
                    child
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else current
                )
                visit(child, nxt)

        visit(root, root)
        return best

    def _index_module_attrs(self, src: ModuleSource) -> None:
        body = src.tree.body if isinstance(src.tree, ast.Module) else []
        for stmt in body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            cls = self._class_of_constructor(src, stmt.value)
            if cls is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.module_attr_types[(src.module, target.id)] = (
                        cls.qualname
                    )

    def _derive_attr_types(self, cls: ClassInfo) -> None:
        """``self.x = ...`` assignments in any method pin attr types."""
        for method in cls.methods.values():
            env = {
                a.arg: t
                for a, t in self._annotated_params(method)
                if t is not None
            }
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    value = node.value
                    if isinstance(value, ast.Call):
                        dotted = cls.src.dotted(value.func)
                        if dotted in _LOCK_CONSTRUCTORS:
                            cls.lock_attrs.add(attr)
                            continue
                        if dotted in _THREAD_LOCAL_CONSTRUCTORS:
                            cls.thread_local_attrs.add(attr)
                            continue
                        ctor = self._class_of_constructor(cls.src, value)
                        if ctor is not None:
                            cls.attr_types.setdefault(attr, ctor.qualname)
                    elif isinstance(value, ast.Name) and value.id in env:
                        cls.attr_types.setdefault(attr, env[value.id])

    # ------------------------------------------------------------------
    # Name and type resolution
    # ------------------------------------------------------------------
    def resolve_class(
        self, name: str, src: ModuleSource
    ) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted) class name seen in ``src``."""
        if not name:
            return None
        same_module = self.classes.get(f"{src.module}.{name}")
        if same_module is not None:
            return same_module
        if name in self.classes:
            return self.classes[name]
        head, _, rest = name.partition(".")
        origin = src.import_aliases.get(head)
        if origin is not None:
            dotted = f"{origin}.{rest}" if rest else origin
            if dotted in self.classes:
                return self.classes[dotted]
        # Unique bare-name fallback (annotations of re-exported classes).
        if "." not in name:
            hits = [c for c in self.classes.values() if c.name == name]
            if len(hits) == 1:
                return hits[0]
        return None

    def _class_of_constructor(
        self, src: ModuleSource, call: ast.Call
    ) -> Optional[ClassInfo]:
        dotted = src.dotted(call.func)
        if dotted is None:
            return None
        return self.resolve_class(dotted, src)

    def _annotation_name(
        self, src: ModuleSource, ann: Optional[ast.expr]
    ) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return ann.value.strip("'\" ")
        if isinstance(ann, (ast.Name, ast.Attribute)):
            return src.dotted(ann)
        if isinstance(ann, ast.Subscript):
            # Optional[X] — the analyses treat "maybe X" as "X".
            base = src.dotted(ann.value)
            if base in {"typing.Optional", "Optional"}:
                return self._annotation_name(src, ann.slice)
        return None

    def _annotated_params(
        self, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.arg, Optional[str]]]:
        for arg in list(fn.node.args.posonlyargs) + list(fn.node.args.args):
            name = self._annotation_name(fn.src, arg.annotation)
            cls = self.resolve_class(name, fn.src) if name else None
            yield arg, cls.qualname if cls else None

    def return_type(self, fn: FunctionInfo) -> Optional[str]:
        """Class qualname of ``fn``'s annotated return type, if any."""
        name = self._annotation_name(fn.src, fn.node.returns)
        cls = self.resolve_class(name, fn.src) if name else None
        return cls.qualname if cls else None

    # ------------------------------------------------------------------
    # Per-function type environments
    # ------------------------------------------------------------------
    def local_env(self, fn: FunctionInfo) -> Dict[str, str]:
        """Name -> class qualname for ``fn``'s locals.

        Covers ``self``, annotated parameters, constructor assignments,
        results of calls with resolvable return annotations, and
        ``with ... as x`` bindings.  Nested defs inherit the enclosing
        function's environment (closures).
        """
        cached = self._env_cache.get(fn.qualname)
        if cached is not None:
            return cached
        if fn.qualname in self._env_in_progress:
            return {}
        self._env_in_progress.add(fn.qualname)
        try:
            env: Dict[str, str] = {}
            if fn.parent is not None:
                env.update(self.local_env(fn.parent))
            if fn.owner is not None and fn.params and fn.parent is None:
                env[fn.params[0]] = fn.owner.qualname
            for arg, typ in self._annotated_params(fn):
                if typ is not None:
                    env[arg.arg] = typ
            changed = True
            sweeps = 0
            while changed and sweeps < 3:
                changed = False
                sweeps += 1
                for node in ast.walk(fn.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    elif isinstance(node, ast.withitem):
                        target, value = node.optional_vars, node.context_expr
                    if not isinstance(target, ast.Name) or value is None:
                        continue
                    typ2 = self.infer_type(value, fn, env)
                    if typ2 is not None and env.get(target.id) != typ2:
                        env[target.id] = typ2
                        changed = True
            self._env_cache[fn.qualname] = env
            return env
        finally:
            self._env_in_progress.discard(fn.qualname)

    def infer_type(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        env: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Class qualname of ``expr``'s value, when statically evident."""
        if env is None:
            env = self.local_env(fn)
        if isinstance(expr, ast.Name):
            local = env.get(expr.id)
            if local is not None:
                return local
            return self.module_attr_types.get((fn.module, expr.id))
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(expr.value, fn, env)
            if base is not None:
                cls = self.classes.get(base)
                if cls is not None:
                    hit = self._attr_type_with_bases(cls, expr.attr)
                    if hit is not None:
                        return hit
            dotted = fn.src.dotted(expr)
            if dotted is not None:
                if dotted in self.classes:
                    return dotted
                head, _, attr = dotted.rpartition(".")
                hit2 = self.module_attr_types.get((head, attr))
                if hit2 is not None:
                    return hit2
            return None
        if isinstance(expr, ast.Call):
            ctor = self._class_of_constructor(fn.src, expr)
            if ctor is not None:
                return ctor.qualname
            for callee in self.resolve_callees(fn, expr, env):
                ret = self.return_type(callee)
                if ret is not None:
                    return ret
            return None
        return None

    def _attr_type_with_bases(
        self, cls: ClassInfo, attr: str
    ) -> Optional[str]:
        for klass in self._mro(cls):
            hit = klass.attr_types.get(attr)
            if hit is not None:
                return hit
        return None

    def _mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            for base in current.base_names:
                resolved = self.resolve_class(base, current.src)
                if resolved is not None:
                    stack.append(resolved)

    def lookup_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        for klass in self._mro(cls):
            hit = klass.methods.get(name)
            if hit is not None:
                return hit
        return None

    # ------------------------------------------------------------------
    # Callable resolution
    # ------------------------------------------------------------------
    #: More same-named methods than this and the name tells us nothing.
    METHOD_FALLBACK_CAP = 3

    def resolve_callees(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: Optional[Dict[str, str]] = None,
    ) -> List[FunctionInfo]:
        """Project functions a call may land in (empty = external)."""
        return self.resolve_callable_ref(fn, call.func, env)

    def resolve_callable_ref(
        self,
        fn: FunctionInfo,
        func: ast.expr,
        env: Optional[Dict[str, str]] = None,
    ) -> List[FunctionInfo]:
        """Resolve a callable *reference* (callee expr or callback arg)."""
        if env is None:
            env = self.local_env(fn)
        if isinstance(func, ast.Name):
            nested = self._lookup_nested(fn, func.id)
            if nested is not None:
                return [nested]
            module_fn = self.functions.get(f"{fn.module}.{func.id}")
            if module_fn is not None and module_fn.owner is None:
                return [module_fn]
            origin = fn.src.import_aliases.get(func.id)
            if origin is not None and origin in self.functions:
                return [self.functions[origin]]
            return []
        if isinstance(func, ast.Attribute):
            receiver = self.infer_type(func.value, fn, env)
            if receiver is not None:
                cls = self.classes.get(receiver)
                if cls is not None:
                    method = self.lookup_method(cls, func.attr)
                    return [method] if method is not None else []
            dotted = fn.src.dotted(func)
            if dotted is not None and dotted in self.functions:
                return [self.functions[dotted]]
            # Method-name fallback: only when the name is distinctive
            # enough to be meaningful project-wide.
            candidates = self.methods_by_name.get(func.attr, [])
            if 0 < len(candidates) <= self.METHOD_FALLBACK_CAP:
                return list(candidates)
            return []
        return []

    def _lookup_nested(
        self, fn: FunctionInfo, name: str
    ) -> Optional[FunctionInfo]:
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            hit = self.functions.get(f"{scope.qualname}.{name}")
            if hit is not None:
                return hit
            scope = scope.parent
        return None


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.field`` (or ``cls.field``) -> ``field``; else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
