"""SEC101 — interprocedural plaintext-to-sink taint analysis.

Extends SEC001's intra-function taint model across call boundaries.
Every function gets a :class:`TaintSummary`:

* ``returns_taint`` — the return value is plaintext (a source, or
  derived from one);
* ``taint_params`` — parameter indices whose taint reaches the return
  value (identity-ish helpers: padding, framing, chunking);
* ``sink_params`` — parameter indices that reach a persistence/ocall
  sink inside the callee (or deeper — summaries compose).

Summaries are iterated to a fixpoint over the call graph (a worklist
seeded with every function; a changed summary re-queues its callers).

Taint labels distinguish *where* the taint has travelled:

* ``L`` — sourced locally in this function (SEC001's territory);
* ``C`` — crossed at least one call boundary to get here;
* ``P<i>`` — flowed in through parameter ``i``.

SEC101 fires only on interprocedural evidence — a ``C``-labelled value
at a sink, or a locally tainted argument handed to a callee whose
summary says the parameter reaches a sink.  Purely local flows stay
SEC001 findings, so the two rules never double-report.

Sanitizers are summary-level: any ``seal*``/``encrypt*`` call (minus
the ``unseal``/``decrypt`` family) cleans its result, and a resolved
callee whose summary neither returns taint nor forwards the tainted
parameter absorbs the taint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.lint.config import (
    SINK_CALL_NAMES,
    SINK_WRITE_RECEIVERS,
    TAINT_DECRYPT_CALLS,
    TAINT_SOURCE_CALLS,
    LintConfig,
)
from repro.analysis.lint.framework import Finding, Severity
from repro.analysis.lint.rules_sec import (
    _call_name,
    _is_sanitizer,
    _name_is_tainted,
)

RULE_ID = "SEC101"
SEVERITY = Severity.ERROR
TITLE = "plaintext crosses a call boundary into a PM/untrusted sink"

#: Taint crossed a call boundary (returned from / forwarded through a
#: project callee).
CROSSED = "C"
#: Taint sourced inside the current function.
LOCAL = "L"

Labels = FrozenSet[str]
_EMPTY: Labels = frozenset()
_LOCAL_ONLY: Labels = frozenset({LOCAL})

#: Calls that wrap a buffer without changing its confidentiality.
_WRAPPERS = frozenset({"bytes", "bytearray", "memoryview", "cast", "bin"})


def _param_label(index: int) -> str:
    return f"P{index}"


def _param_index_of(label: str) -> Optional[int]:
    if label.startswith("P") and label[1:].isdigit():
        return int(label[1:])
    return None


@dataclass(frozen=True)
class SinkPath:
    """Why a parameter is dangerous: the call chain down to the sink."""

    chain: Tuple[str, ...]
    sink: str
    location: str


@dataclass(frozen=True)
class TaintSummary:
    """Caller-visible taint behaviour of one function."""

    returns_taint: bool = False
    taint_params: FrozenSet[int] = frozenset()
    sink_params: Tuple[Tuple[int, SinkPath], ...] = ()

    def sink_path(self, index: int) -> Optional[SinkPath]:
        for i, path in self.sink_params:
            if i == index:
                return path
        return None


class TaintAnalysis:
    """Fixpoint summary computation + SEC101 finding emission."""

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config
        self.summaries: Dict[str, TaintSummary] = {}
        self._run_fixpoint()

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _run_fixpoint(self) -> None:
        worklist: List[str] = sorted(self.project.functions)
        queued: Set[str] = set(worklist)
        iterations = 0
        cap = max(64, len(worklist) * 8)
        while worklist and iterations < cap:
            iterations += 1
            qualname = worklist.pop()
            queued.discard(qualname)
            fn = self.project.functions[qualname]
            summary = self._summarize(fn)
            if summary != self.summaries.get(qualname):
                self.summaries[qualname] = summary
                for site in self.graph.callers_of.get(qualname, []):
                    caller = site.caller.qualname
                    if caller not in queued:
                        queued.add(caller)
                        worklist.append(caller)

    def summary_of(self, qualname: str) -> TaintSummary:
        return self.summaries.get(qualname, TaintSummary())

    # ------------------------------------------------------------------
    # Per-function evaluation
    # ------------------------------------------------------------------
    def _summarize(self, fn: FunctionInfo) -> TaintSummary:
        labels = self._propagate(fn)
        returns_taint = False
        taint_params: Set[int] = set()
        sink_params: Dict[int, SinkPath] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                got = self._eval(node.value, fn, labels)
                if LOCAL in got or CROSSED in got:
                    returns_taint = True
                for label in got:
                    index = _param_index_of(label)
                    if index is not None:
                        taint_params.add(index)
            elif isinstance(node, ast.Call):
                self._collect_sink_params(fn, node, labels, sink_params)
        return TaintSummary(
            returns_taint=returns_taint,
            taint_params=frozenset(taint_params),
            sink_params=tuple(sorted(sink_params.items())),
        )

    def _propagate(self, fn: FunctionInfo) -> Dict[str, Labels]:
        """Flow-insensitive name -> labels map, to a local fixpoint."""
        labels: Dict[str, Labels] = {}
        for index, name in enumerate(fn.params):
            labels[name] = frozenset({_param_label(index)})
        statements = [
            s
            for s in ast.walk(fn.node)
            if isinstance(s, (ast.Assign, ast.AnnAssign, ast.AugAssign))
        ]
        for _ in range(4):
            changed = False
            for stmt in statements:
                targets: List[ast.expr]
                if isinstance(stmt, ast.Assign):
                    targets, value = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    if stmt.value is None:
                        continue
                    targets, value = [stmt.target], stmt.value
                else:
                    targets, value = [stmt.target], stmt.value
                got = self._eval(value, fn, labels)
                if not got:
                    continue
                for target in targets:
                    changed |= self._mark(target, got, labels, stmt)
            if not changed:
                break
        return labels

    def _mark(
        self,
        target: ast.expr,
        got: Labels,
        labels: Dict[str, Labels],
        stmt: ast.stmt,
    ) -> bool:
        if isinstance(target, ast.Name):
            merged = labels.get(target.id, _EMPTY) | got
            if isinstance(stmt, ast.AugAssign):
                merged |= labels.get(target.id, _EMPTY)
            if merged != labels.get(target.id, _EMPTY):
                labels[target.id] = merged
                return True
            return False
        if isinstance(target, (ast.Tuple, ast.List)):
            out = False
            for element in target.elts:
                out |= self._mark(element, got, labels, stmt)
            return out
        return False

    def _eval(
        self, node: ast.expr, fn: FunctionInfo, labels: Dict[str, Labels]
    ) -> Labels:
        if isinstance(node, ast.Name):
            got = labels.get(node.id, _EMPTY)
            if _name_is_tainted(node.id):
                got = got | _LOCAL_ONLY
            return got
        if isinstance(node, ast.Attribute):
            return _LOCAL_ONLY if _name_is_tainted(node.attr) else _EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node, fn, labels)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, fn, labels) | self._eval(
                node.right, fn, labels
            )
        if isinstance(node, ast.Subscript):
            return self._eval(node.value, fn, labels)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body, fn, labels) | self._eval(
                node.orelse, fn, labels
            )
        if isinstance(node, ast.Starred):
            return self._eval(node.value, fn, labels)
        return _EMPTY

    def _eval_call(
        self, node: ast.Call, fn: FunctionInfo, labels: Dict[str, Labels]
    ) -> Labels:
        name = _call_name(node.func)
        if name is not None and _is_sanitizer(name):
            return _EMPTY
        # Name-based sources are SEC001's territory: keep them LOCAL even
        # when the callee resolves, so the two rules never double-report.
        if name is not None and (
            name in TAINT_SOURCE_CALLS
            or name in TAINT_DECRYPT_CALLS
            or _name_is_tainted(name)
        ):
            return _LOCAL_ONLY
        callees = self.graph.project.resolve_callees(fn, node)
        if callees:
            out: Set[str] = set()
            for callee in callees:
                summary = self.summary_of(callee.qualname)
                if summary.returns_taint:
                    out.add(CROSSED)
                for arg_index, expr in self._call_args(node, callee):
                    if arg_index in summary.taint_params:
                        for label in self._eval(expr, fn, labels):
                            if label in (LOCAL, CROSSED):
                                out.add(CROSSED)
                            else:
                                out.add(label)
            return frozenset(out)
        if name is None:
            return _EMPTY
        if name in _WRAPPERS:
            got: Set[str] = set()
            for arg in node.args:
                got |= self._eval(arg, fn, labels)
            if isinstance(node.func, ast.Attribute):
                got |= self._eval(node.func.value, fn, labels)
            return frozenset(got)
        return _EMPTY

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def _sink_name(self, fn: FunctionInfo, node: ast.Call) -> Optional[str]:
        name = _call_name(node.func)
        if name is None:
            return None
        if name in SINK_CALL_NAMES:
            return name
        if name == "write" and isinstance(node.func, ast.Attribute):
            tail = fn.src.receiver_tail(node.func)
            if tail in SINK_WRITE_RECEIVERS:
                return f"{tail}.write"
        return None

    def _call_args(
        self, node: ast.Call, callee: FunctionInfo
    ) -> Iterator[Tuple[int, ast.expr]]:
        """(callee param index, argument expr) pairs for a call site."""
        offset = 0
        if callee.is_method and isinstance(node.func, ast.Attribute):
            offset = 1  # self is bound by the receiver
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            yield position + offset, arg
        for kw in node.keywords:
            if kw.arg is None:
                continue
            index = callee.param_index(kw.arg)
            if index is not None:
                yield index, kw.value

    def _collect_sink_params(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        labels: Dict[str, Labels],
        sink_params: Dict[int, SinkPath],
    ) -> None:
        location = f"{fn.src.path}:{node.lineno}"
        sink = self._sink_name(fn, node)
        if sink is not None:
            for arg in node.args:
                for label in self._eval(arg, fn, labels):
                    index = _param_index_of(label)
                    if index is not None and index not in sink_params:
                        sink_params[index] = SinkPath(
                            chain=(fn.qualname,), sink=sink, location=location
                        )
            return
        # Transitive: a parameter handed to a callee whose own summary
        # reaches a sink makes *this* function's parameter dangerous.
        for callee in self.graph.project.resolve_callees(fn, node):
            summary = self.summary_of(callee.qualname)
            if not summary.sink_params:
                continue
            for arg_index, expr in self._call_args(node, callee):
                path = summary.sink_path(arg_index)
                if path is None or len(path.chain) >= 8:
                    continue
                for label in self._eval(expr, fn, labels):
                    index = _param_index_of(label)
                    if index is not None and index not in sink_params:
                        sink_params[index] = SinkPath(
                            chain=(fn.qualname,) + path.chain,
                            sink=path.sink,
                            location=path.location,
                        )

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------
    def findings(self) -> Iterator[Finding]:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            if self.config.is_sec_implementation_module(fn.module):
                continue
            yield from self._check_function(fn)

    def _finding(
        self, fn: FunctionInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            path=str(fn.src.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            module=fn.module,
        )

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        labels = self._propagate(fn)
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            key = (node.lineno, node.col_offset)
            sink = self._sink_name(fn, node)
            if sink is not None:
                for arg in node.args:
                    got = self._eval(arg, fn, labels)
                    # LOCAL present -> SEC001 fires here too; stand down.
                    if CROSSED in got and LOCAL not in got and key not in seen:
                        seen.add(key)
                        yield self._finding(
                            fn,
                            node,
                            "plaintext produced across a call boundary "
                            f"reaches sink '{sink}' without an intervening "
                            "seal/encrypt step",
                        )
                        break
                continue
            for callee in self.graph.project.resolve_callees(fn, node):
                summary = self.summary_of(callee.qualname)
                if not summary.sink_params:
                    continue
                for arg_index, expr in self._call_args(node, callee):
                    path = summary.sink_path(arg_index)
                    if path is None:
                        continue
                    got = self._eval(expr, fn, labels)
                    if (LOCAL in got or CROSSED in got) and key not in seen:
                        seen.add(key)
                        chain = " -> ".join(path.chain)
                        yield self._finding(
                            fn,
                            node,
                            f"plaintext argument flows through {chain} to "
                            f"sink '{path.sink}' ({path.location}) without "
                            "an intervening seal/encrypt step",
                        )
                        break
