"""Project-wide call graph over :class:`~repro.analysis.flow.project.Project`.

Edges are *may-call*: each :class:`CallSite` records every project
function the call could land in (method calls resolve through the
receiver's inferred class, falling back to a capped same-name match).
Calls that resolve to nothing are external — the analyses treat them
as opaque.

Thread roots are recorded separately: callables handed to
``pool.map`` / ``executor.submit``, ``threading.Thread(target=...)``,
and event-callback registrars (``gateway.schedule_call``) run off the
defining thread, so everything reachable from them is concurrent with
the main thread.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.flow.project import FunctionInfo, Project

#: ``recv.<name>(fn, ...)`` hands ``fn`` to another thread.
_SPAWN_METHODS = frozenset({"map", "submit"})
#: ``recv.<name>(when, fn)`` registers ``fn`` as an event callback that
#: the gateway loop invokes outside the registering call stack.
_CALLBACK_REGISTRARS = frozenset({"schedule_call"})


@dataclass
class CallSite:
    """One syntactic call inside ``caller`` with resolved targets."""

    caller: FunctionInfo
    node: ast.Call
    callees: List[FunctionInfo] = field(default_factory=list)


class CallGraph:
    """Forward call sites plus the reverse (callers-of) index."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.sites_by_caller: Dict[str, List[CallSite]] = {}
        #: callee qualname -> call sites that may invoke it.
        self.callers_of: Dict[str, List[CallSite]] = {}
        #: Functions invoked from worker threads or event callbacks.
        self.thread_roots: Set[str] = set()
        for fn in project.functions.values():
            self._index_function(fn)

    def _index_function(self, fn: FunctionInfo) -> None:
        sites: List[CallSite] = []
        env = self.project.local_env(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callees = self.project.resolve_callees(fn, node, env)
            site = CallSite(caller=fn, node=node, callees=callees)
            sites.append(site)
            for callee in callees:
                self.callers_of.setdefault(callee.qualname, []).append(site)
            self._detect_spawn(fn, node, env)
        self.sites_by_caller[fn.qualname] = sites

    def _detect_spawn(
        self, fn: FunctionInfo, node: ast.Call, env: Dict[str, str]
    ) -> None:
        func = node.func
        candidates: List[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr in _SPAWN_METHODS:
            if node.args:
                candidates.append(node.args[0])
        elif isinstance(func, ast.Attribute) and func.attr in _CALLBACK_REGISTRARS:
            candidates.extend(node.args)
            candidates.extend(kw.value for kw in node.keywords)
        else:
            dotted = fn.src.dotted(func)
            if dotted == "threading.Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        candidates.append(kw.value)
        for expr in candidates:
            for target in self.project.resolve_callable_ref(fn, expr, env):
                self.thread_roots.add(target.qualname)

    def sites_of(self, fn: FunctionInfo) -> List[CallSite]:
        return self.sites_by_caller.get(fn.qualname, [])

    def reachable_from_roots(self) -> Set[str]:
        """Qualnames transitively callable from any thread root."""
        seen: Set[str] = set()
        stack = list(self.thread_roots)
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            for site in self.sites_by_caller.get(qualname, []):
                for callee in site.callees:
                    if callee.qualname not in seen:
                        stack.append(callee.qualname)
        return seen
