"""Orchestration of the interprocedural flow analyses.

:class:`FlowEngine` builds the whole-program index once (project →
call graph) and runs the three analyses over it; :class:`FlowResult`
carries their findings plus wall-clock timing so the CI budget
assertion (< 60 s on the full repo) has a number to check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.durability import DurabilityAnalysis
from repro.analysis.flow.durability import RULE_ID as DUR_RULE_ID
from repro.analysis.flow.durability import TITLE as DUR_TITLE
from repro.analysis.flow.lockset import LocksetAnalysis
from repro.analysis.flow.lockset import RULE_ID as RACE_RULE_ID
from repro.analysis.flow.lockset import TITLE as RACE_TITLE
from repro.analysis.flow.project import Project
from repro.analysis.flow.taint import RULE_ID as SEC_RULE_ID
from repro.analysis.flow.taint import TITLE as SEC_TITLE
from repro.analysis.flow.taint import TaintAnalysis
from repro.analysis.lint.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.lint.framework import Finding


def flow_rule_catalog() -> Dict[str, Tuple[str, str]]:
    """rule id -> (title, severity string) for the flow rule family."""
    return {
        SEC_RULE_ID: (SEC_TITLE, "error"),
        DUR_RULE_ID: (DUR_TITLE, "error"),
        RACE_RULE_ID: (RACE_TITLE, "error"),
    }


@dataclass
class FlowResult:
    """Outcome of one whole-program flow pass."""

    findings: List[Finding] = field(default_factory=list)
    seconds: float = 0.0
    #: Size of the analyzed program (modules/functions/call edges).
    stats: Dict[str, int] = field(default_factory=dict)


class FlowEngine:
    """Builds the program index and runs SEC101/DUR001/RACE001."""

    def __init__(self, project: Project, config: LintConfig) -> None:
        self.project = project
        self.config = config
        self.graph = CallGraph(project)

    @classmethod
    def build(
        cls, paths: Sequence[Path], config: LintConfig = DEFAULT_CONFIG
    ) -> "FlowEngine":
        return cls(Project.load(paths), config)

    def analyze(self) -> FlowResult:
        started = time.perf_counter()
        findings: List[Finding] = []
        taint = TaintAnalysis(self.project, self.graph, self.config)
        findings.extend(taint.findings())
        durability = DurabilityAnalysis(self.project, self.graph, self.config)
        findings.extend(durability.findings())
        lockset = LocksetAnalysis(self.project, self.graph, self.config)
        findings.extend(lockset.findings())
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        edges = sum(
            len(site.callees)
            for sites in self.graph.sites_by_caller.values()
            for site in sites
        )
        return FlowResult(
            findings=findings,
            seconds=time.perf_counter() - started,
            stats={
                "modules": len(self.project.modules),
                "functions": len(self.project.functions),
                "classes": len(self.project.classes),
                "call_edges": edges,
                "thread_roots": len(self.graph.thread_roots),
            },
        )
