"""DUR001 — static durability ordering for publication writes.

The two crash bugs PR 4 found dynamically share one shape: a
*publication* — a store that makes other stores reachable — became
durable before the payload it points to.  Concretely:

* the region **magic** (``device.write(base, MAGIC)``) was flushed
  before the allocator metadata/twin snapshot it promises;
* the PM-data **root pointer** (``tx.write_u64(root_offset(...), ...)``)
  was published in the same transaction as the header, before the row
  payloads were written.

This pass extracts an ordered *effect sequence* per function — writes,
flushes, fences, transaction begin/end, and publications — splicing in
resolved callees' sequences at their call sites, then checks two
orderings along that sequence:

* **magic rule** — when a flush covers a pending magic write (the
  publication point), every other write must already be durable
  (flushed *and* fenced) or covered by that same flush;
* **root rule** — once a root publication commits (its transaction
  ends), no later write may follow in the same function: the
  publication must be the operation's final durability action.

Write/flush ranges are compared *textually* (``ast.unparse`` of the
offset expression, spaces stripped): ``self.base+8`` is covered by a
flush of ``self.base`` via prefix match.  This is deliberately
syntactic — it can't prove overlap, but the protocol code addresses
ranges with stable expressions, and the mutants differ exactly in
effect *order*, which the model captures faithfully.

Spliced (callee) effects keep the call-site location and are marked
non-own; findings require an *own* anchor so a violation inside a
helper is reported once, in the helper, not at every caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.framework import Finding, Severity
from repro.analysis.lint.rules_sec import _call_name

RULE_ID = "DUR001"
SEVERITY = Severity.ERROR
TITLE = "publication write not dominated by flush+fence of its payload"

#: Module prefixes whose functions the checker examines (the durability
#: protocols and their two in-repo clients).
SCOPE_PREFIXES: Tuple[str, ...] = (
    "repro.romulus",
    "repro.core.mirror",
    "repro.core.pm_data",
)

#: Receiver tails whose ``write*`` methods are transactional.
_TX_RECEIVERS = frozenset({"tx", "transaction"})
#: Receiver tails whose ``write*`` methods hit the device directly.
_DEVICE_RECEIVERS = frozenset({"pm", "pmem", "device", "region", "ssd"})
_WRITE_METHODS = frozenset({"write", "write_u64", "write_prefilled"})

#: Cap on a single function's (spliced) effect sequence.
_MAX_EFFECTS = 400


@dataclass
class Effect:
    """One durability-relevant action at a point in a function."""

    kind: str  # write | magic | pubroot | flush | fence | txbegin | txend
    key: str  # normalized offset expression ("" for fence/tx markers)
    line: int
    col: int
    own: bool  # syntactically in the checked function (vs spliced)
    via: str = ""  # callee qualname when spliced


def _norm(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr).replace(" ", "")
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _covers(flush_key: str, write_key: str) -> bool:
    """Whether a flush of ``flush_key`` covers a write at ``write_key``."""
    return write_key == flush_key or write_key.startswith(flush_key + "+")


def _mentions_magic(expr: Optional[ast.expr]) -> bool:
    if expr is None:
        return False
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "MAGIC" in node.id.upper():
            return True
        if isinstance(node, ast.Attribute) and "MAGIC" in node.attr.upper():
            return True
    return False


def _mentions_root_offset(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name == "root_offset":
                return True
    return False


def _is_constant_zero(expr: Optional[ast.expr]) -> bool:
    return (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, int)
        and expr.value == 0
    )


def _is_tx_context(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    name = _call_name(expr.func)
    if name is None:
        return False
    return name == "begin_transaction" or name.endswith("Transaction")


class DurabilityAnalysis:
    """Effect extraction + the two ordering checks."""

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config
        self._cache: Dict[str, List[Effect]] = {}
        self._building: Set[str] = set()

    # ------------------------------------------------------------------
    # Effect extraction
    # ------------------------------------------------------------------
    def effects_of(self, fn: FunctionInfo) -> List[Effect]:
        cached = self._cache.get(fn.qualname)
        if cached is not None:
            return cached
        if fn.qualname in self._building:
            return []  # recursion: cut the cycle
        self._building.add(fn.qualname)
        try:
            out: List[Effect] = []
            for stmt in fn.node.body:
                self._stmt_effects(fn, stmt, out)
                if len(out) >= _MAX_EFFECTS:
                    break
            out = out[:_MAX_EFFECTS]
            self._cache[fn.qualname] = out
            return out
        finally:
            self._building.discard(fn.qualname)

    def _stmt_effects(
        self, fn: FunctionInfo, stmt: ast.stmt, out: List[Effect]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.With):
            is_tx = any(_is_tx_context(item.context_expr) for item in stmt.items)
            for item in stmt.items:
                self._expr_effects(fn, item.context_expr, out)
            if is_tx:
                out.append(
                    Effect("txbegin", "", stmt.lineno, stmt.col_offset, True)
                )
            for inner in stmt.body:
                self._stmt_effects(fn, inner, out)
            if is_tx:
                out.append(
                    Effect("txend", "", stmt.lineno, stmt.col_offset, True)
                )
            return
        if isinstance(stmt, (ast.If,)):
            self._expr_effects(fn, stmt.test, out)
            for inner in stmt.body + stmt.orelse:
                self._stmt_effects(fn, inner, out)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr_effects(fn, stmt.iter, out)
            for inner in stmt.body + stmt.orelse:
                self._stmt_effects(fn, inner, out)
            return
        if isinstance(stmt, ast.While):
            self._expr_effects(fn, stmt.test, out)
            for inner in stmt.body + stmt.orelse:
                self._stmt_effects(fn, inner, out)
            return
        if isinstance(stmt, ast.Try):
            for inner in stmt.body:
                self._stmt_effects(fn, inner, out)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._stmt_effects(fn, inner, out)
            for inner in stmt.orelse + stmt.finalbody:
                self._stmt_effects(fn, inner, out)
            return
        # Leaf statement: collect calls in evaluation order.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._call_effects(fn, node, out)

    def _expr_effects(
        self, fn: FunctionInfo, expr: ast.expr, out: List[Effect]
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call_effects(fn, node, out)

    def _call_effects(
        self, fn: FunctionInfo, node: ast.Call, out: List[Effect]
    ) -> None:
        name = _call_name(node.func)
        line, col = node.lineno, node.col_offset
        if name is None:
            return
        if isinstance(node.func, ast.Attribute):
            tail = fn.src.receiver_tail(node.func)
            if name in _WRITE_METHODS and tail in _TX_RECEIVERS and node.args:
                value = node.args[1] if len(node.args) > 1 else None
                if _mentions_root_offset(node.args[0]) and not _is_constant_zero(
                    value
                ):
                    out.append(Effect("pubroot", _norm(node.args[0]), line, col, True))
                else:
                    out.append(Effect("write", _norm(node.args[0]), line, col, True))
                return
            if name in _WRITE_METHODS and tail in _DEVICE_RECEIVERS and node.args:
                value = node.args[1] if len(node.args) > 1 else None
                kind = "magic" if _mentions_magic(value) else "write"
                out.append(Effect(kind, _norm(node.args[0]), line, col, True))
                return
            if name == "copy_within" and len(node.args) >= 2:
                out.append(Effect("write", _norm(node.args[1]), line, col, True))
                return
            if name == "flush" and node.args:
                out.append(Effect("flush", _norm(node.args[0]), line, col, True))
                return
            if name == "persist" and node.args:
                out.append(Effect("flush", _norm(node.args[0]), line, col, True))
                out.append(Effect("fence", "", line, col, True))
                return
            if name == "fence":
                out.append(Effect("fence", "", line, col, True))
                return
        # Project callee: splice its sequence at the call site.
        for callee in self.project.resolve_callees(fn, node):
            if callee.qualname == fn.qualname:
                continue
            for effect in self.effects_of(callee):
                out.append(
                    Effect(
                        effect.kind,
                        effect.key,
                        line,
                        col,
                        own=False,
                        via=effect.via or callee.qualname,
                    )
                )
                if len(out) >= _MAX_EFFECTS:
                    return
            break  # one candidate's sequence is enough context

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def findings(self) -> Iterator[Finding]:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            if not self._in_scope(fn.module):
                continue
            yield from self._check_function(fn)

    def _in_scope(self, module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in SCOPE_PREFIXES
        )

    def _finding(
        self, fn: FunctionInfo, effect: Effect, message: str
    ) -> Finding:
        return Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            path=str(fn.src.path),
            line=effect.line,
            col=effect.col,
            message=message,
            module=fn.module,
        )

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        effects = self.effects_of(fn)
        if not effects:
            return
        yield from self._check_magic(fn, effects)
        yield from self._check_pubroot(fn, effects)

    def _check_magic(
        self, fn: FunctionInfo, effects: List[Effect]
    ) -> Iterator[Finding]:
        """A flush covering a pending magic write is the publication
        point: every other write must be durable or co-flushed."""
        # write key -> (state, effect); state in {dirty, flushed, durable}
        writes: Dict[str, Tuple[str, Effect]] = {}
        pending_magic: List[Effect] = []
        tx_depth = 0
        tx_writes: List[str] = []
        for effect in effects:
            if effect.kind == "txbegin":
                tx_depth += 1
            elif effect.kind == "txend":
                tx_depth = max(0, tx_depth - 1)
                for key in tx_writes:
                    state, node = writes[key]
                    writes[key] = ("durable", node)
                tx_writes = []
            elif effect.kind in ("write", "pubroot"):
                writes[effect.key] = ("dirty", effect)
                if tx_depth > 0 and effect.key not in tx_writes:
                    tx_writes.append(effect.key)
            elif effect.kind == "magic":
                pending_magic.append(effect)
                writes[effect.key] = ("dirty", effect)
            elif effect.kind == "flush":
                published = [
                    m for m in pending_magic if _covers(effect.key, m.key)
                ]
                if published:
                    pending_magic = [
                        m for m in pending_magic if m not in published
                    ]
                    offenders = [
                        (key, state_effect)
                        for key, state_effect in writes.items()
                        if state_effect[0] != "durable"
                        and not _covers(effect.key, key)
                    ]
                    for key, (state, wnode) in offenders:
                        # Both effects spliced from the same call site
                        # means the violation is entirely inside one
                        # callee — that callee's own check reports it.
                        same_splice = (
                            not effect.own
                            and not wnode.own
                            and (effect.line, effect.col)
                            == (wnode.line, wnode.col)
                        )
                        if same_splice:
                            continue
                        anchor = effect if effect.own else wnode
                        via = f" (via {wnode.via})" if wnode.via else ""
                        yield self._finding(
                            fn,
                            anchor,
                            "magic/header publication flushed while write "
                            f"to '{key}'{via} is not yet durable "
                            f"({state}); flush+fence the payload before "
                            "publishing the magic",
                        )
                for key, (state, wnode) in list(writes.items()):
                    if state == "dirty" and _covers(effect.key, key):
                        writes[key] = ("flushed", wnode)
            elif effect.kind == "fence":
                for key, (state, wnode) in list(writes.items()):
                    if state == "flushed":
                        writes[key] = ("durable", wnode)

    def _check_pubroot(
        self, fn: FunctionInfo, effects: List[Effect]
    ) -> Iterator[Finding]:
        """A committed root publication must be the function's final
        write: payload stores after it are reachable-before-durable."""
        pending_pub: Optional[Effect] = None  # written, tx still open
        active_pub: Optional[Effect] = None  # committed (reachable)
        tx_depth = 0
        for effect in effects:
            if effect.kind == "pubroot" and effect.own:
                if tx_depth > 0:
                    pending_pub = effect
                else:
                    active_pub = effect
            elif effect.kind == "txbegin":
                tx_depth += 1
            elif effect.kind == "txend":
                tx_depth = max(0, tx_depth - 1)
                if pending_pub is not None and tx_depth == 0:
                    active_pub = pending_pub
                    pending_pub = None
            elif effect.kind in ("write", "magic") and active_pub is not None:
                anchor = effect if effect.own else active_pub
                via = f" (via {effect.via})" if effect.via else ""
                yield self._finding(
                    fn,
                    anchor,
                    f"write to '{effect.key}'{via} occurs after the root "
                    f"publication at line {active_pub.line}; publish the "
                    "root only after every payload write is durable",
                )
                active_pub = None  # one finding per publication
