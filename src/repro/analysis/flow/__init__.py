"""Interprocedural flow engine (``repro.analysis.flow``).

A whole-program layer on top of the per-module lint framework:

* :mod:`~repro.analysis.flow.project` — parse every module once, index
  functions/classes/methods, and infer lightweight types (annotations,
  ``self.attr = Constructor()`` assignments, module attributes);
* :mod:`~repro.analysis.flow.callgraph` — alias- and method-resolved
  call-graph construction, including ``self.`` dispatch, nested defs,
  and thread/callback spawn sites;
* :mod:`~repro.analysis.flow.taint` — per-function taint summaries
  (sources in → return/sink out, sanitizers) propagated to a fixpoint:
  rule **SEC101** (interprocedural plaintext-to-sink);
* :mod:`~repro.analysis.flow.durability` — per-function durability
  effect summaries (writes, flushes, fences, transactions, root/magic
  publications): rule **DUR001** (publication dominated by payload
  flush+fence);
* :mod:`~repro.analysis.flow.lockset` — Eraser-style interprocedural
  locksets over fields shared with worker threads and event callbacks:
  rule **RACE001**;
* :mod:`~repro.analysis.flow.engine` — orchestration + timing.
"""

from repro.analysis.flow.engine import FlowEngine, FlowResult, flow_rule_catalog

__all__ = ["FlowEngine", "FlowResult", "flow_rule_catalog"]
