"""Static analyses of the reproduction itself."""

from repro.analysis.tcb import TcbReport, tcb_report

__all__ = ["TcbReport", "tcb_report"]
