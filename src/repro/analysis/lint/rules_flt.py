"""FLT001 — fault-point site literals must exist in the registry.

The fault-injection engine (``repro.faults``) resolves sites by string
name at every instrumented call::

    active = faultplan.ACTIVE
    if active.enabled:
        active.check("pm.flush")

A typo in that literal is silent at runtime: the plan simply counts a
site nobody ever schedules, so the crash-schedule explorer *skips* the
instrumented point and the coverage hole is invisible.  This rule
resolves every ``<plan>.check("...")`` / ``<plan>.mutate("...", ...)``
call whose receiver traces back to ``faultplan.ACTIVE`` (directly or
through a local alias) and fails if the site literal is not registered
in :data:`repro.faults.registry.SITES`.

Non-literal site arguments on a traced receiver are flagged too: the
registry is the single source of truth, and a dynamically built site
name cannot be checked against it (the fault machinery itself is
exempt — it forwards validated specs by design).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.framework import Finding, ModuleSource, Rule, Severity

#: The plan entry points consulted by instrumented modules.
_PLAN_METHODS = ("check", "mutate")

#: The fault machinery itself forwards spec-validated site names through
#: variables; only *instrumented* modules are held to the literal rule.
_EXEMPT_PREFIX = "repro.faults"


def _registered_sites() -> Set[str]:
    from repro.faults.registry import SITES

    return set(SITES)


def _is_active_attribute(node: ast.AST) -> bool:
    """``faultplan.ACTIVE`` / ``plan.ACTIVE`` / bare ``ACTIVE``."""
    if isinstance(node, ast.Attribute):
        return node.attr == "ACTIVE"
    return isinstance(node, ast.Name) and node.id == "ACTIVE"


class FaultSiteRegistryRule(Rule):
    rule_id = "FLT001"
    severity = Severity.ERROR
    title = "fault-point site names must be registered in repro.faults.registry"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        if src.module.startswith(_EXEMPT_PREFIX):
            return
        sites = _registered_sites()
        aliases = self._plan_aliases(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _PLAN_METHODS
            ):
                continue
            receiver = func.value
            traced = _is_active_attribute(receiver) or (
                isinstance(receiver, ast.Name) and receiver.id in aliases
            )
            if not traced or not node.args:
                continue
            site_arg = node.args[0]
            if not (
                isinstance(site_arg, ast.Constant)
                and isinstance(site_arg.value, str)
            ):
                yield self.finding(
                    src,
                    site_arg,
                    f"fault-plan .{func.attr}() with a non-literal site "
                    "name: the registry (repro.faults.registry.SITES) "
                    "cannot vouch for it",
                )
                continue
            if site_arg.value not in sites:
                yield self.finding(
                    src,
                    site_arg,
                    f"unregistered fault site {site_arg.value!r}: add it "
                    "to repro.faults.registry.SITES (and the catalog in "
                    "docs/fault-injection.md) or fix the typo",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _plan_aliases(src: ModuleSource) -> Set[str]:
        """Local names bound to ``faultplan.ACTIVE`` anywhere in the file."""
        aliases: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign) and _is_active_attribute(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases
