"""PM001 — every PM store goes through a Romulus durable transaction.

Paper invariant (Section II / V): a crash must never observe a
half-written mirror or data matrix, which holds only if all PM mutation
is funnelled through the twin-copy transaction protocol
(``tx.write`` / ``tx.write_prefilled``).  A raw ``device.write``,
``device.copy_within`` or a writable ``staging_view`` acquired outside a
transaction bypasses the volatile log: the bytes are neither covered by
the MUTATING/COPYING state machine nor restored on abort.

The rule flags:

* calls to ``write``/``write_prefilled``/``copy_within`` whose receiver
  looks like a PM object (``device``, ``pm``, ``region`` tails — the
  sanctioned ``tx.*`` path never matches);
* any acquisition of a writable PM view (``staging_view`` /
  ``volatile_view``) — mutation-by-aliasing;

unless the call is lexically inside a ``with <region>.begin_transaction()``
(or ``with Transaction(...)``) block, or the module is one of the
protocol implementations (:data:`~repro.analysis.lint.config.PM_PROTOCOL_MODULES`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.config import (
    PM_RECEIVER_TAILS,
    PM_VIEW_METHODS,
    PM_WRITE_METHODS,
    LintConfig,
)
from repro.analysis.lint.framework import Finding, ModuleSource, Rule, Severity

_TX_FACTORY_NAMES = frozenset({"begin_transaction", "Transaction"})


def _is_transaction_context(src: ModuleSource, node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``with ...begin_transaction()`` or
    ``with Transaction(...)`` block."""
    for ancestor in src.ancestors(node):
        if not isinstance(ancestor, ast.With):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            func = expr.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if name in _TX_FACTORY_NAMES:
                return True
    return False


class PmStoreDisciplineRule(Rule):
    """Raw PM mutation outside a Romulus transaction."""

    rule_id = "PM001"
    severity = Severity.ERROR
    title = "PM store outside a Romulus durable transaction"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        if self.config.is_pm_protocol_module(src.module):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            method = func.attr
            if method in PM_VIEW_METHODS:
                if _is_transaction_context(src, node):
                    continue
                yield self.finding(
                    src,
                    node,
                    f"writable PM view '{method}' acquired outside a "
                    "Romulus transaction; the covering transaction must "
                    "account the range with tx.write_prefilled before "
                    "commit",
                )
                continue
            if method not in PM_WRITE_METHODS:
                continue
            tail = src.receiver_tail(func)
            if tail is None or tail not in PM_RECEIVER_TAILS:
                continue
            # Raw device stores bypass the volatile log even inside a
            # ``with tx`` block — only the tx.* methods are sanctioned,
            # so (unlike view acquisition) no transaction-context escape.
            yield self.finding(
                src,
                node,
                f"raw PM store '{tail}.{method}(...)' bypasses the "
                "Romulus transaction protocol; route the write through "
                "tx.write / tx.write_prefilled",
            )
