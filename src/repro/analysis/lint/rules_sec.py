"""SEC001/SEC002 — confidentiality boundaries of the Plinius design.

SEC001 (seal-before-persist): plaintext model weights, tensors, or
training rows must pass through ``EncryptionEngine.seal*`` before they
reach persistent memory, the SSD, or cross an ocall into untrusted host
code (paper Section IV: "everything that leaves the enclave is AES-GCM
sealed").  The rule runs a light intra-function taint analysis:

* **sources** — calls that yield plaintext bytes (``save_weights``,
  ``arr.tobytes()``, ``parameter_buffers()``, ``np.ascontiguousarray``),
  freshly decrypted data (``unseal``/``decrypt``), and identifiers whose
  name marks them as plaintext;
* **propagation** — assignments, augmented assignments, concatenation,
  ``bytes``/``bytearray``/``memoryview`` wrapping, subscripts;
* **sanitizers** — any ``*seal*``/``*encrypt*`` call (except the
  ``unseal``/``decrypt`` family) cleans its result;
* **sinks** — ``tx.write``/``device.write``/``ssd.write``-style storage
  methods and ``runtime.ocall`` arguments.

The analysis is deliberately flow-insensitive within a function (a name
assigned a tainted value anywhere is tainted everywhere), trading a few
suppressible false positives for zero missed single-function flows.

SEC002 (enclave-only symbols): modules classified *untrusted* by the TCB
partitioning must not import or reference the in-enclave DRNG
(``repro.sgx.rand``) or the sealing-key machinery
(``repro.sgx.sealing``): in the real system those symbols do not link
outside the enclave, and a reference from helper code means key material
or attacker-predictable randomness crossed the boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.lint.config import (
    SANITIZER_MARKERS,
    SINK_CALL_NAMES,
    SINK_WRITE_RECEIVERS,
    TAINT_DECRYPT_CALLS,
    TAINT_NAME_MARKERS,
    TAINT_SOURCE_CALLS,
    LintConfig,
)
from repro.analysis.lint.framework import Finding, ModuleSource, Rule, Severity


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_sanitizer(name: str) -> bool:
    lowered = name.lower()
    if lowered in TAINT_DECRYPT_CALLS or "decrypt" in lowered:
        return False
    return any(marker in lowered for marker in SANITIZER_MARKERS)


def _name_is_tainted(identifier: str) -> bool:
    lowered = identifier.lower()
    return any(marker in lowered for marker in TAINT_NAME_MARKERS)


class _FunctionTaint:
    """Per-function taint state: the set of tainted local names."""

    def __init__(self) -> None:
        self.tainted: Set[str] = set()

    # ------------------------------------------------------------------
    def expr_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted or _name_is_tainted(node.id)
        if isinstance(node, ast.Attribute):
            return _name_is_tainted(node.attr)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name is None:
                return False
            if _is_sanitizer(name):
                return False
            if name in TAINT_SOURCE_CALLS or name in TAINT_DECRYPT_CALLS:
                return True
            if _name_is_tainted(name):
                return True
            # Wrappers preserve taint: bytes(x), memoryview(x), x.cast(...)
            if name in {"bytes", "bytearray", "memoryview", "cast", "bin"}:
                return any(self.expr_tainted(arg) for arg in node.args) or (
                    isinstance(node.func, ast.Attribute)
                    and self.expr_tainted(node.func.value)
                )
            return False
        if isinstance(node, ast.BinOp):
            return self.expr_tainted(node.left) or self.expr_tainted(node.right)
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, (ast.IfExp,)):
            return self.expr_tainted(node.body) or self.expr_tainted(
                node.orelse
            )
        if isinstance(node, ast.JoinedStr):
            return False
        return False

    # ------------------------------------------------------------------
    def absorb_statement(self, stmt: ast.stmt) -> None:
        """Update the tainted-name set from one statement."""
        if isinstance(stmt, ast.Assign):
            tainted = self.expr_tainted(stmt.value)
            for target in stmt.targets:
                self._mark_target(target, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._mark_target(stmt.target, self.expr_tainted(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            if self.expr_tainted(stmt.value):
                self._mark_target(stmt.target, True)

    def _mark_target(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name) and tainted:
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)) and tainted:
            for element in target.elts:
                self._mark_target(element, True)


class SealBeforePersistRule(Rule):
    """Plaintext buffers flowing into PM/untrusted sinks unsealed."""

    rule_id = "SEC001"
    severity = Severity.ERROR
    title = "plaintext reaches a PM/untrusted sink without sealing"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        if self.config.is_sec_implementation_module(src.module):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(src, node)

    # ------------------------------------------------------------------
    def _check_function(
        self, src: ModuleSource, func: ast.AST
    ) -> Iterator[Finding]:
        taint = _FunctionTaint()
        body = getattr(func, "body", [])
        # Pass 1: flow-insensitive propagation to a fixed point (two
        # sweeps cover chains like a = source(); b = a; c = b).
        statements = [s for stmt in body for s in ast.walk(stmt)]
        for _ in range(2):
            before = len(taint.tainted)
            for stmt in statements:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    taint.absorb_statement(stmt)
            if len(taint.tainted) == before:
                break
        # Pass 2: inspect sink calls.
        for node in statements:
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name is None:
                continue
            is_sink = False
            if name in SINK_CALL_NAMES:
                is_sink = True
            elif name == "write" and isinstance(node.func, ast.Attribute):
                tail = src.receiver_tail(node.func)
                is_sink = tail in SINK_WRITE_RECEIVERS
            if not is_sink:
                continue
            for arg in node.args:
                if taint.expr_tainted(arg):
                    yield self.finding(
                        src,
                        node,
                        "plaintext data reaches persistent/untrusted sink "
                        f"'{name}' without an intervening "
                        "EncryptionEngine.seal* call",
                    )
                    break


class EnclaveBoundaryRule(Rule):
    """Enclave-only symbols referenced from untrusted modules."""

    rule_id = "SEC002"
    severity = Severity.ERROR
    title = "enclave-only symbol referenced from an untrusted module"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        if not self.config.is_untrusted(src.module):
            return
        enclave_modules = self.config.enclave_only_modules
        enclave_names = self.config.enclave_only_names
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in enclave_modules:
                        yield self.finding(
                            src,
                            node,
                            f"untrusted module imports enclave-only "
                            f"module '{alias.name}'",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module in enclave_modules:
                    names = ", ".join(a.name for a in node.names)
                    yield self.finding(
                        src,
                        node,
                        f"untrusted module imports {names} from "
                        f"enclave-only module '{node.module}'",
                    )
                else:
                    flagged = [
                        a.name
                        for a in node.names
                        if a.name in enclave_names
                    ]
                    if flagged:
                        yield self.finding(
                            src,
                            node,
                            "untrusted module imports enclave-only "
                            f"symbol(s) {', '.join(flagged)}",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = src.dotted(node)
                if dotted is None:
                    continue
                if any(
                    dotted == m or dotted.startswith(m + ".")
                    for m in enclave_modules
                ):
                    yield self.finding(
                        src,
                        node,
                        f"untrusted module references enclave-only "
                        f"symbol '{dotted}'",
                    )
