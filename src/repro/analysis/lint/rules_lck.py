"""LCK001 — lock-guarded fields are only mutated under their lock.

PR 1 made sealing multi-threaded; classes such as
``EncryptionEngine`` (``stats`` under ``_stats_lock``) and the obs
``CounterRegistry``/``TraceRecorder`` (``_counters``/``spans`` under
``_lock``) aggregate across worker threads.  A mutation that skips the
``with self._lock`` block is a data race the test suite will almost
never catch (the sim is single-threaded except for the sealing pool).

Instead of a hand-maintained registry of guarded classes, the rule
self-calibrates per class:

1. lock attributes are attributes assigned a
   ``threading.Lock()``/``RLock()`` in any method
   (:data:`~repro.analysis.lint.config.LOCK_CONSTRUCTORS`);
2. a field is *guarded* if at least one mutation of it happens inside
   ``with self.<lock>:`` somewhere in the class;
3. every other mutation of a guarded field — outside ``__init__``,
   which runs before the object is shared — is a finding.

"Mutation" covers subscript stores (``self.stats[k] = v``), augmented
assignment (``self.total += n``), and in-place container methods
(``self.spans.append(...)``).  Rebinding ``self.field = fresh`` in
``__init__`` is setup, not a race.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.config import (
    LOCK_CONSTRUCTORS,
    MUTATING_METHODS,
    LintConfig,
)
from repro.analysis.lint.framework import Finding, ModuleSource, Rule, Severity


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.field`` -> ``field``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_field(node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """If ``node`` mutates ``self.<field>``, return (field, site)."""
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            # self.stats[key] = value  (container store, not rebinding)
            if isinstance(target, ast.Subscript):
                field = _self_attr(target.value)
                if field is not None:
                    return field, node
    elif isinstance(node, ast.AugAssign):
        field = _self_attr(node.target)
        if field is not None:
            return field, node
        if isinstance(node.target, ast.Subscript):
            field = _self_attr(node.target.value)
            if field is not None:
                return field, node
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            field = _self_attr(func.value)
            if field is not None:
                return field, node
    return None


class LockDisciplineRule(Rule):
    """Guarded-field mutation outside ``with self._lock``."""

    rule_id = "LCK001"
    severity = Severity.ERROR
    title = "lock-guarded field mutated outside its lock"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    # ------------------------------------------------------------------
    def _check_class(
        self, src: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = self._lock_attributes(src, cls)
        if not lock_attrs:
            return
        # (field, site, under_lock, in_init) for every mutation of self.*
        mutations: List[Tuple[str, ast.AST, bool, bool]] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = method.name == "__init__"
            for node in ast.walk(method):
                hit = _mutated_field(node)
                if hit is None:
                    continue
                field, site = hit
                under = self._under_lock(src, site, lock_attrs)
                mutations.append((field, site, under, in_init))
        guarded: Set[str] = {
            field for field, _, under, _ in mutations if under
        }
        for field, site, under, in_init in mutations:
            if field in guarded and not under and not in_init:
                yield self.finding(
                    src,
                    site,
                    f"'self.{field}' is lock-guarded elsewhere in "
                    f"{cls.name} but mutated here outside "
                    "'with self.<lock>:'",
                )

    # ------------------------------------------------------------------
    def _lock_attributes(
        self, src: ModuleSource, cls: ast.ClassDef
    ) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            dotted = src.dotted(node.value.func)
            if dotted not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                field = _self_attr(target)
                if field is not None:
                    locks.add(field)
        return locks

    def _under_lock(
        self, src: ModuleSource, node: ast.AST, lock_attrs: Set[str]
    ) -> bool:
        for ancestor in src.ancestors(node):
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                field = _self_attr(item.context_expr)
                if field is not None and field in lock_attrs:
                    return True
        return False
