"""Repo-specific invariant linter (see docs/static-analysis.md).

Rule-based AST analysis encoding the Plinius paper's machine-checkable
invariants: PM-store transaction discipline (PM001), seal-before-persist
confidentiality (SEC001/SEC002), sim-time determinism (DET001), and
lock-guarded state discipline (LCK001).
"""

from repro.analysis.lint.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.lint.framework import (
    SUPPRESSION_RULE_ID,
    Finding,
    ModuleSource,
    Rule,
    Severity,
)
from repro.analysis.lint.reporters import render_json, render_text
from repro.analysis.lint.runner import (
    LintResult,
    default_rules,
    discover_files,
    lint_file,
    run_paths,
)

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleSource",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "Severity",
    "default_rules",
    "discover_files",
    "lint_file",
    "render_json",
    "render_text",
    "run_paths",
]
