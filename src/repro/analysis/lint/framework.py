"""Core abstractions of the repo-specific invariant linter.

The linter is a small rule-based AST framework: each :class:`Rule`
inspects one parsed module (:class:`ModuleSource`) and yields
:class:`Finding` objects.  The framework owns everything rule-agnostic:

* severity levels and the finding record;
* per-line and per-file suppression directives::

      some_call()  # repro: noqa[PM001] -- staged bytes are committed below
      # repro: noqa-file[DET001] -- benchmark harness, wall clock intended

  A suppression **must** carry a ``--`` rationale; a bare directive is
  itself reported as :data:`SUPPRESSION_RULE_ID` so hand-audited escape
  hatches stay documented (an acceptance criterion of the rule set);
* a fixture override ``# repro: lint-module[dotted.name]`` that lets test
  fixtures masquerade as a specific module for classification-sensitive
  rules (trusted/untrusted, simtime-governed);
* shared AST utilities: parent links, import-alias resolution, dotted
  attribute-chain rendering.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Rule id reported for suppression directives lacking a rationale.
SUPPRESSION_RULE_ID = "SUP001"

_NOQA_LINE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[A-Z0-9_,\s]+)\](?P<rest>.*)$"
)
_NOQA_FILE = re.compile(
    r"#\s*repro:\s*noqa-file\[(?P<ids>[A-Z0-9_,\s]+)\](?P<rest>.*)$"
)
_MODULE_OVERRIDE = re.compile(r"#\s*repro:\s*lint-module\[(?P<name>[\w.]+)\]")


class Severity(Enum):
    """How a finding is treated by the exit-code policy."""

    #: Reported always; fails the run only under ``--strict``.
    WARNING = "warning"
    #: Fails the run unconditionally.
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    module: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (the ``--format json`` shape)."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "module": self.module,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Suppressions:
    """Parsed ``repro: noqa`` directives of one file."""

    #: line number -> rule ids suppressed on that line ({"*"} = all).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_wide: Set[str] = field(default_factory=set)
    #: (line, directive text) of directives missing a rationale.
    missing_rationale: List[Tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id == SUPPRESSION_RULE_ID:
            return False  # the meta rule cannot be silenced
        if finding.rule_id in self.file_wide or "*" in self.file_wide:
            return True
        ids = self.by_line.get(finding.line, set())
        return finding.rule_id in ids or "*" in ids


def parse_suppressions(lines: List[str]) -> Suppressions:
    """Extract every suppression directive from the file's raw lines.

    A trailing directive covers its own line; a directive on a
    standalone comment line covers the next code line (skipping any
    further comment/blank lines, so multi-line rationales work).
    """
    sup = Suppressions()
    for lineno, raw in enumerate(lines, start=1):
        for pattern, file_wide in ((_NOQA_FILE, True), (_NOQA_LINE, False)):
            match = pattern.search(raw)
            if match is None:
                continue
            ids = {
                part.strip()
                for part in match.group("ids").split(",")
                if part.strip()
            }
            rest = match.group("rest").strip()
            if not rest.startswith("--") or len(rest.lstrip("- ")) < 3:
                sup.missing_rationale.append((lineno, raw.strip()))
            if file_wide:
                sup.file_wide |= ids
            else:
                sup.by_line.setdefault(lineno, set()).update(ids)
                if raw.strip().startswith("#"):
                    target = lineno + 1
                    while target <= len(lines) and (
                        not lines[target - 1].strip()
                        or lines[target - 1].strip().startswith("#")
                    ):
                        target += 1
                    sup.by_line.setdefault(target, set()).update(ids)
            break  # noqa-file also matches the noqa regex; report once
    return sup


class ModuleSource:
    """One parsed module plus the derived lookup structures rules need."""

    def __init__(self, path: Path, module: str, text: str) -> None:
        self.path = path
        self.module = module
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.AST = ast.parse(text, filename=str(path))
        self.suppressions = parse_suppressions(self.lines)
        self._parents: Optional[Dict[int, ast.AST]] = None
        self._aliases: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path, module: Optional[str] = None) -> "ModuleSource":
        """Read and parse ``path``; honours the lint-module override."""
        text = path.read_text()
        name = module if module is not None else infer_module_name(path)
        for raw in text.splitlines()[:10]:
            override = _MODULE_OVERRIDE.search(raw)
            if override is not None:
                name = override.group("name")
                break
        return cls(path, name, text)

    # ------------------------------------------------------------------
    # AST utilities shared by the rules
    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[int, ast.AST]:
        """Map ``id(node) -> parent node`` over the whole tree."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = parent
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        parents = self.parents
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    @property
    def import_aliases(self) -> Dict[str, str]:
        """Local name -> fully dotted origin, from every import statement.

        ``import numpy as np`` maps ``np -> numpy``; ``from repro.sgx.rand
        import SgxRandom`` maps ``SgxRandom -> repro.sgx.rand.SgxRandom``.
        """
        if self._aliases is None:
            aliases: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        target = alias.name if alias.asname else local
                        aliases[local] = target
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        aliases[local] = f"{node.module}.{alias.name}"
            self._aliases = aliases
        return self._aliases

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Render a ``Name``/``Attribute`` chain as a dotted string,
        resolving the head through the module's import aliases.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``.
        Returns ``None`` for expressions that are not plain chains
        (calls, subscripts, literals as the head).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.import_aliases.get(parts[0])
        if head is not None:
            parts[0:1] = head.split(".")
        return ".".join(parts)

    def receiver_tail(self, func: ast.expr) -> Optional[str]:
        """Last component of a method call's receiver expression.

        For ``self.region.device.write`` the receiver is
        ``self.region.device`` and the tail is ``device``; for
        ``device.write`` it is ``device``.  ``None`` when the callee is
        not an attribute access on a name/attribute chain.
        """
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Attribute):
            return receiver.attr
        if isinstance(receiver, ast.Name):
            return receiver.id
        if isinstance(receiver, ast.Call):
            # chained call such as region.staging_view(...).cast("B")
            return self.receiver_tail(receiver.func)
        return None


class Rule:
    """Base class: one machine-checked invariant from the paper."""

    #: Stable identifier, e.g. ``PM001`` (used in suppressions/reports).
    rule_id: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line description shown in documentation and reports.
    title: str = ""

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        """Yield findings for ``src``; must not mutate the tree."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    # ------------------------------------------------------------------
    def finding(
        self, src: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=str(src.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            module=src.module,
        )


def infer_module_name(path: Path) -> str:
    """Dotted module name for ``path`` (walks up through ``__init__.py``
    packages); bare file stem for scripts and fixtures outside a package."""
    parts = [path.stem if path.stem != "__init__" else ""]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    return ".".join(p for p in reversed(parts) if p)


def suppression_findings(src: ModuleSource) -> Iterator[Finding]:
    """The framework's own meta rule: suppressions need a rationale."""
    for lineno, text in src.suppressions.missing_rationale:
        yield Finding(
            rule_id=SUPPRESSION_RULE_ID,
            severity=Severity.ERROR,
            path=str(src.path),
            line=lineno,
            col=1,
            message=(
                "suppression directive has no rationale: append "
                f"'-- <why this is safe>' ({text!r})"
            ),
            module=src.module,
        )
