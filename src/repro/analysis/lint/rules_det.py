"""DET001 — sim-time governed code must stay deterministic.

The reproduction reports all paper figures in *simulated* time
(:mod:`repro.simtime`): a run is a pure function of its seed and cost
profile, which is what makes the figure tests assertable.  A wall-clock
read (``time.time``, ``datetime.now``) or a draw from hidden global RNG
state (``random.random``, ``np.random.rand``, an unseeded
``default_rng()``) silently breaks that reproducibility.

The rule resolves call chains through the module's import aliases
(``import numpy as np`` → ``np.random.rand`` matches
``numpy.random.rand``) and flags, in every sim-time governed module:

* calls in :data:`~repro.analysis.lint.config.NONDETERMINISTIC_CALLS`
  (wall clocks, ``os.urandom``, ``secrets``, ``uuid1/4``);
* module-level RNG functions drawing from global state
  (:data:`~repro.analysis.lint.config.GLOBAL_RNG_FUNCTIONS`);
* seedable constructors called with no arguments at all
  (:data:`~repro.analysis.lint.config.SEEDED_CONSTRUCTORS`).

The ``repro.obs`` wall-clock observability lane, benchmarks, and the
analysis tooling are exempt (``DET_EXEMPT_PREFIXES``).  Findings are
WARNING severity — they fail the run only under ``--strict`` — because
a handful of legitimate entropy defaults exist (key generation,
caller-convenience RNG fallbacks) and each carries a suppression with
its rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.config import (
    GLOBAL_RNG_FUNCTIONS,
    NONDETERMINISTIC_CALLS,
    SEEDED_CONSTRUCTORS,
    LintConfig,
)
from repro.analysis.lint.framework import Finding, ModuleSource, Rule, Severity


class SimtimeDeterminismRule(Rule):
    """Wall clocks / hidden-state RNG in sim-time governed modules."""

    rule_id = "DET001"
    severity = Severity.WARNING
    title = "nondeterministic call in a sim-time governed module"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        if not self.config.is_det_governed(src.module):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(src, node)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                yield from self._check_reference(src, node)

    # ------------------------------------------------------------------
    def _check_call(
        self, src: ModuleSource, node: ast.Call
    ) -> Iterator[Finding]:
        dotted = src.dotted(node.func)
        if dotted is None:
            return
        if dotted in NONDETERMINISTIC_CALLS:
            yield self.finding(
                src,
                node,
                f"'{dotted}' reads the wall clock or host entropy; "
                "sim-time modules must derive time from SimClock and "
                "randomness from a seeded generator",
            )
        elif dotted in GLOBAL_RNG_FUNCTIONS:
            yield self.finding(
                src,
                node,
                f"'{dotted}' draws from hidden global RNG state; use a "
                "seeded Generator threaded through the call chain",
            )
        elif dotted in SEEDED_CONSTRUCTORS and not node.args and not node.keywords:
            yield self.finding(
                src,
                node,
                f"'{dotted}()' constructed without an explicit seed; "
                "pass the run's seed so replays are bit-identical",
            )

    def _check_reference(
        self, src: ModuleSource, node: ast.AST
    ) -> Iterator[Finding]:
        """Bare references like ``rand = os.urandom`` (call-less capture)."""
        parent = src.parents.get(id(node))
        if isinstance(parent, (ast.Call, ast.Attribute)):
            return  # handled as a call, or an inner link of a longer chain
        dotted = src.dotted(node)
        if dotted in NONDETERMINISTIC_CALLS:
            yield self.finding(
                src,
                node,
                f"reference to '{dotted}' captures a wall-clock/entropy "
                "source; inject a deterministic callable instead",
            )
