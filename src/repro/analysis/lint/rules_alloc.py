"""ALLOC001 — the serve hot path must not allocate.

The batched inference path (``ServingEnclave.handle_batch``) runs
allocation-free after warmup: every tensor it touches lives in the
preallocated :class:`~repro.darknet.arena.TensorArena`, and the
micro-benchmarks gate on that property (a stray ``np.zeros`` in the
per-request loop erases the batching win and shows up as arena
*misses* in steady state).

The rule flags direct calls to numpy's allocating constructors
(:data:`~repro.analysis.lint.config.NUMPY_ALLOCATOR_CALLS`: ``zeros``,
``empty``, ``concatenate``, ``stack`` and friends) inside the declared
hot-path modules (:data:`~repro.analysis.lint.config.HOT_PATH_MODULES`).
Setup-time allocation is still legitimate in exactly one place — the
arena's own miss path — and each such call carries a
``# repro: noqa[ALLOC001] -- <why>`` rationale, which is the audited
escape hatch this rule set requires.

Alias-resolved like every other rule: ``import numpy as np`` →
``np.zeros`` matches ``numpy.zeros``; ``from numpy import concatenate``
matches too.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.config import (
    NUMPY_ALLOCATOR_CALLS,
    LintConfig,
)
from repro.analysis.lint.framework import Finding, ModuleSource, Rule, Severity


class HotPathAllocationRule(Rule):
    """Numpy array allocation inside an allocation-free hot-path module."""

    rule_id = "ALLOC001"
    severity = Severity.ERROR
    title = "numpy allocation in an arena-backed hot-path module"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        if not self.config.is_hot_path(src.module):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = src.dotted(node.func)
            if dotted in NUMPY_ALLOCATOR_CALLS:
                yield self.finding(
                    src,
                    node,
                    f"'{dotted}' allocates a fresh array on the serve hot "
                    "path; take a view from the TensorArena instead (or "
                    "suppress with a rationale if this is genuinely "
                    "setup-time)",
                )
