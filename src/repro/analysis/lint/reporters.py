"""Rendering of lint results: human-readable text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.lint.framework import Finding, Severity


def render_text(findings: List[Finding], files_checked: int) -> str:
    """GCC-style ``path:line:col: severity RULE message`` listing."""
    lines: List[str] = []
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    ):
        lines.append(
            f"{finding.location()}: {finding.severity} "
            f"[{finding.rule_id}] {finding.message}"
        )
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"checked {files_checked} file(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(findings: List[Finding], files_checked: int) -> str:
    """Stable JSON document for CI consumers and editor integrations."""
    payload: Dict[str, object] = {
        "files_checked": files_checked,
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(
            1 for f in findings if f.severity is Severity.WARNING
        ),
        "findings": [
            f.to_dict()
            for f in sorted(
                findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
            )
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
