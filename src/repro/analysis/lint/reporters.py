"""Rendering of lint results: text, machine JSON, and SARIF 2.1.0.

The SARIF document is the minimal valid subset GitHub's code-scanning
ingestion understands: one run, a tool driver with per-rule metadata,
and one result per finding with a physical location.  The CI lint job
uploads it as an artifact so findings render as PR annotations.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.analysis.lint.framework import (
    SUPPRESSION_RULE_ID,
    Finding,
    Severity,
)

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-lint"


def render_text(
    findings: List[Finding],
    files_checked: int,
    flow_seconds: Optional[float] = None,
) -> str:
    """GCC-style ``path:line:col: severity RULE message`` listing."""
    lines: List[str] = []
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    ):
        lines.append(
            f"{finding.location()}: {finding.severity} "
            f"[{finding.rule_id}] {finding.message}"
        )
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = (
        f"checked {files_checked} file(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if flow_seconds is not None:
        summary += f" [flow pass: {flow_seconds:.2f}s]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: List[Finding],
    files_checked: int,
    flow: Optional[Dict[str, object]] = None,
) -> str:
    """Stable JSON document for CI consumers and editor integrations.

    ``flow`` (when the whole-program pass ran) adds a ``flow`` key with
    ``seconds`` and the engine's program-size stats — the CI timing
    budget reads ``.flow.seconds`` from this output.
    """
    payload: Dict[str, object] = {
        "files_checked": files_checked,
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(
            1 for f in findings if f.severity is Severity.WARNING
        ),
        "findings": [
            f.to_dict()
            for f in sorted(
                findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
            )
        ],
    }
    if flow is not None:
        payload["flow"] = flow
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalog() -> Dict[str, Tuple[str, str]]:
    """Every known rule id -> (title, default severity string)."""
    # Imported here: runner/flow import this module's renderers at the
    # CLI layer, so top-level imports would be circular.
    from repro.analysis.flow import flow_rule_catalog
    from repro.analysis.lint.runner import default_rules

    catalog: Dict[str, Tuple[str, str]] = {
        rule.rule_id: (rule.title, str(rule.severity))
        for rule in default_rules()
    }
    catalog.update(flow_rule_catalog())
    catalog[SUPPRESSION_RULE_ID] = (
        "suppression directive missing a rationale",
        "error",
    )
    return catalog


def _sarif_level(severity: str) -> str:
    return "error" if severity == "error" else "warning"


def render_sarif(findings: List[Finding], files_checked: int) -> str:
    """SARIF 2.1.0 document (GitHub code-scanning compatible)."""
    catalog = _rule_catalog()
    # Rules referenced by findings but unknown to the catalog (custom
    # rule objects in tests) still get an entry so the document is valid.
    for finding in findings:
        catalog.setdefault(
            finding.rule_id, (finding.rule_id, str(finding.severity))
        )
    rule_ids = sorted(catalog)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": catalog[rule_id][0]},
            "defaultConfiguration": {
                "level": _sarif_level(catalog[rule_id][1])
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": _sarif_level(str(finding.severity)),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.col + 1),
                        },
                    }
                }
            ],
        }
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "shortDescription": {
                            "text": "repo-specific invariant linter "
                            "(docs/static-analysis.md)"
                        },
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)