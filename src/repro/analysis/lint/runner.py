"""Discovery + orchestration: run every rule over a set of paths.

``run_paths`` is the single entry point the CLI and the tests share.
Exit-code policy: ERROR findings always fail the run; WARNING findings
fail only under ``--strict`` (the CI lint job passes ``--strict`` so a
new wall-clock call cannot land silently).

Two passes run by default:

* the **per-module** rules (one file at a time, no cross-file state);
* the **flow** pass (:mod:`repro.analysis.flow`) — whole-program
  SEC101/DUR001/RACE001, built over *every* discovered file even when
  reporting is restricted (``restrict_to``), because call-graph and
  summary precision depends on seeing the whole program.

Flow findings go through the same per-file suppression machinery as
per-module findings (``# repro: noqa[SEC101] -- rationale``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    Severity,
    suppression_findings,
)
from repro.analysis.lint.rules_alloc import HotPathAllocationRule
from repro.analysis.lint.rules_det import SimtimeDeterminismRule
from repro.analysis.lint.rules_flt import FaultSiteRegistryRule
from repro.analysis.lint.rules_lck import LockDisciplineRule
from repro.analysis.lint.rules_pm import PmStoreDisciplineRule
from repro.analysis.lint.rules_sec import (
    EnclaveBoundaryRule,
    SealBeforePersistRule,
)


def default_rules(config: LintConfig = DEFAULT_CONFIG) -> List[Rule]:
    """The full rule set, in report order."""
    return [
        PmStoreDisciplineRule(config),
        SealBeforePersistRule(config),
        EnclaveBoundaryRule(config),
        SimtimeDeterminismRule(config),
        HotPathAllocationRule(config),
        LockDisciplineRule(config),
        FaultSiteRegistryRule(config),
    ]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    #: Whether the whole-program flow pass ran.
    flow_enabled: bool = False
    #: Wall-clock seconds the flow pass took (0.0 when disabled).
    flow_seconds: float = 0.0
    #: Program-size counters from the flow engine (modules, functions,
    #: call edges, ...); empty when the flow pass is disabled.
    flow_stats: Dict[str, int] = field(default_factory=dict)

    def exit_code(self, strict: bool = False) -> int:
        if any(f.severity is Severity.ERROR for f in self.findings):
            return 1
        if strict and self.findings:
            return 1
        return 0


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # de-duplicate while keeping the sorted-per-argument order
    seen = set()
    unique: List[Path] = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def lint_file(
    path: Path, rules: Iterable[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns (kept findings, suppressed findings)."""
    src = ModuleSource.load(path)
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(src))
    raw.extend(suppression_findings(src))
    kept = [f for f in raw if not src.suppressions.is_suppressed(f)]
    dropped = [f for f in raw if src.suppressions.is_suppressed(f)]
    return kept, dropped


def run_paths(
    paths: Sequence[Path],
    config: LintConfig = DEFAULT_CONFIG,
    rules: Iterable[Rule] | None = None,
    flow: bool = True,
    restrict_to: Optional[Sequence[Path]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with the default rules.

    ``restrict_to`` (the ``--changed-only`` machinery) limits which
    files are *reported on*; the flow pass still indexes everything
    under ``paths`` so interprocedural summaries stay whole-program.
    """
    active = list(rules) if rules is not None else default_rules(config)
    files = discover_files(paths)
    if restrict_to is not None:
        wanted = {p.resolve() for p in restrict_to}
        report_files = [f for f in files if f.resolve() in wanted]
    else:
        report_files = files
    findings: List[Finding] = []
    for path in report_files:
        kept, _ = lint_file(path, active)
        findings.extend(kept)
    result = LintResult(findings=findings, files_checked=len(report_files))
    if flow and files:
        _run_flow_pass(files, report_files, config, result)
    return result


def _run_flow_pass(
    files: Sequence[Path],
    report_files: Sequence[Path],
    config: LintConfig,
    result: LintResult,
) -> None:
    """Run the whole-program pass and merge its findings into ``result``."""
    # Imported lazily: the flow package builds on this module's
    # ``discover_files``, so a top-level import would be circular.
    from repro.analysis.flow import FlowEngine

    engine = FlowEngine.build(list(files), config)
    flow_result = engine.analyze()
    result.flow_enabled = True
    result.flow_seconds = flow_result.seconds
    result.flow_stats = dict(flow_result.stats)
    reported = {str(p) for p in report_files}
    suppressions_by_path = {
        str(src.path): src.suppressions for src in engine.project.sources
    }
    for finding in flow_result.findings:
        if finding.path not in reported:
            continue
        sup = suppressions_by_path.get(finding.path)
        if sup is not None and sup.is_suppressed(finding):
            continue
        result.findings.append(finding)
