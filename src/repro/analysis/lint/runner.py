"""Discovery + orchestration: run every rule over a set of paths.

``run_paths`` is the single entry point the CLI and the tests share.
Exit-code policy: ERROR findings always fail the run; WARNING findings
fail only under ``--strict`` (the CI lint job passes ``--strict`` so a
new wall-clock call cannot land silently).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.lint.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    Severity,
    suppression_findings,
)
from repro.analysis.lint.rules_alloc import HotPathAllocationRule
from repro.analysis.lint.rules_det import SimtimeDeterminismRule
from repro.analysis.lint.rules_flt import FaultSiteRegistryRule
from repro.analysis.lint.rules_lck import LockDisciplineRule
from repro.analysis.lint.rules_pm import PmStoreDisciplineRule
from repro.analysis.lint.rules_sec import (
    EnclaveBoundaryRule,
    SealBeforePersistRule,
)


def default_rules(config: LintConfig = DEFAULT_CONFIG) -> List[Rule]:
    """The full rule set, in report order."""
    return [
        PmStoreDisciplineRule(config),
        SealBeforePersistRule(config),
        EnclaveBoundaryRule(config),
        SimtimeDeterminismRule(config),
        HotPathAllocationRule(config),
        LockDisciplineRule(config),
        FaultSiteRegistryRule(config),
    ]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int

    def exit_code(self, strict: bool = False) -> int:
        if any(f.severity is Severity.ERROR for f in self.findings):
            return 1
        if strict and self.findings:
            return 1
        return 0


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # de-duplicate while keeping the sorted-per-argument order
    seen = set()
    unique: List[Path] = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def lint_file(
    path: Path, rules: Iterable[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns (kept findings, suppressed findings)."""
    src = ModuleSource.load(path)
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(src))
    raw.extend(suppression_findings(src))
    kept = [f for f in raw if not src.suppressions.is_suppressed(f)]
    dropped = [f for f in raw if src.suppressions.is_suppressed(f)]
    return kept, dropped


def run_paths(
    paths: Sequence[Path],
    config: LintConfig = DEFAULT_CONFIG,
    rules: Iterable[Rule] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with the default rules."""
    active = list(rules) if rules is not None else default_rules(config)
    findings: List[Finding] = []
    files = discover_files(paths)
    for path in files:
        kept, _ = lint_file(path, active)
        findings.extend(kept)
    return LintResult(findings=findings, files_checked=len(files))
