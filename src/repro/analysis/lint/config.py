"""Repo-specific knowledge the rules consult.

The module sets here mirror the trusted/untrusted partitioning of
:mod:`repro.analysis.tcb` (a test asserts they stay in sync) and add the
linter-only classifications: which modules implement the PM durability
protocols (and are therefore allowed to touch the raw device), which are
governed by the deterministic simulated clock, and which symbols must
never be referenced from untrusted code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

# ----------------------------------------------------------------------
# PM001 — PM-store discipline
# ----------------------------------------------------------------------

#: Modules that *implement* the durability protocols PM001 enforces:
#: the device model itself and the Romulus/undo-log transaction
#: machinery.  Raw stores inside them are the protocol, not a bypass.
PM_PROTOCOL_MODULES: Tuple[str, ...] = (
    "repro.hw.pmem",
    "repro.romulus.region",
    "repro.romulus.transaction",
    "repro.romulus.undolog",
)

#: Method names that mutate PM state when invoked on a device/region.
PM_WRITE_METHODS: FrozenSet[str] = frozenset(
    {"write", "write_prefilled", "copy_within"}
)

#: Methods returning writable views of PM (mutation-by-aliasing).
PM_VIEW_METHODS: FrozenSet[str] = frozenset(
    {"staging_view", "volatile_view"}
)

#: Receiver tails treated as PM objects (``self.region.device`` -> the
#: tail is ``device``).  ``tx``/``transaction`` receivers are the
#: sanctioned path and are deliberately absent.
PM_RECEIVER_TAILS: FrozenSet[str] = frozenset(
    {"pm", "pmem", "device", "region"}
)

# ----------------------------------------------------------------------
# SEC001 — seal-before-persist taint tracking
# ----------------------------------------------------------------------

#: Modules implementing the sealing machinery itself (they necessarily
#: handle plaintext next to sinks and are exempt from SEC001).
SEC_IMPLEMENTATION_MODULES: Tuple[str, ...] = (
    "repro.crypto",
    "repro.sgx.sealing",
)

#: Calls whose *result* is plaintext model/tensor bytes (taint sources).
TAINT_SOURCE_CALLS: FrozenSet[str] = frozenset(
    {"save_weights", "tobytes", "parameter_buffers", "ascontiguousarray"}
)

#: Calls whose result is freshly *decrypted* plaintext.
TAINT_DECRYPT_CALLS: FrozenSet[str] = frozenset(
    {"unseal", "unseal_from", "decrypt", "open_model"}
)

#: Identifier substrings marking a variable as plaintext by convention.
TAINT_NAME_MARKERS: Tuple[str, ...] = ("plaintext", "cleartext")

#: Method names whose call result is sealed/encrypted (sanitizers).
#: Checked with the decrypt list above taking precedence (``unseal``
#: contains ``seal``).
SANITIZER_MARKERS: Tuple[str, ...] = ("seal", "encrypt")

#: Sink methods: ``<receiver>.write(...)`` on these receivers persists
#: its arguments; ``ocall`` hands them to untrusted host code.
SINK_WRITE_RECEIVERS: FrozenSet[str] = frozenset(
    {"tx", "transaction", "pm", "pmem", "device", "region", "ssd", "dram"}
)
SINK_CALL_NAMES: FrozenSet[str] = frozenset({"ocall"})

# ----------------------------------------------------------------------
# SEC002 — enclave-only symbols
# ----------------------------------------------------------------------

#: Modules whose contents exist only inside the (simulated) enclave:
#: the sealing-key derivation and the in-enclave DRNG.
ENCLAVE_ONLY_MODULES: Tuple[str, ...] = (
    "repro.sgx.sealing",
    "repro.sgx.rand",
)

#: Individual enclave-only symbols (wherever they are imported from).
ENCLAVE_ONLY_NAMES: FrozenSet[str] = frozenset(
    {"sgx_read_rand", "SgxRandom", "seal_data", "unseal_data", "hkdf_sha256"}
)

#: Modules running *outside* the enclave under the paper's partitioning.
#: Kept in sync with ``repro.analysis.tcb.UNTRUSTED_MODULES`` by
#: ``tests/test_lint.py``; fixture modules can opt in via the
#: ``# repro: lint-module[...]`` override.
UNTRUSTED_MODULES: Tuple[str, ...] = (
    "repro.darknet.cfg",
    "repro.darknet.data",
    "repro.data.mnist",
    "repro.hw.intervals",
    "repro.hw.pmem",
    "repro.hw.ssd",
    "repro.hw.dram",
    "repro.hw.fio",
    "repro.sgx.enclave",
    "repro.sgx.ecall",
    "repro.sgx.attestation",
    "repro.romulus.runtime",
    "repro.romulus.sps",
    "repro.core.checkpoint",
    "repro.core.models",
    "repro.core.system",
    "repro.core.workflow",
    "repro.spot.traces",
    "repro.spot.simulator",
    "repro.simtime.clock",
    "repro.simtime.costs",
    "repro.simtime.profiles",
    "repro.distributed.link",
    "repro.distributed.data_parallel",
    "repro.distributed.pipeline",
    "repro.gpu.device",
    "repro.gpu.offload",
    "repro.obs.recorder",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.context",
    "repro.obs.hist",
    "repro.obs.slo",
    "repro.obs.flight",
    "repro.obs.report",
    "repro.analysis.tcb",
    "repro.analysis.lint.framework",
    "repro.analysis.lint.config",
    "repro.analysis.lint.rules_pm",
    "repro.analysis.lint.rules_sec",
    "repro.analysis.lint.rules_det",
    "repro.analysis.lint.rules_alloc",
    "repro.analysis.lint.rules_lck",
    "repro.analysis.lint.rules_flt",
    "repro.analysis.lint.reporters",
    "repro.analysis.lint.runner",
    # The interprocedural flow engine (PR 8) is analysis tooling like
    # the per-module linter above: it runs at review time, outside any
    # enclave boundary.
    "repro.analysis.flow.project",
    "repro.analysis.flow.callgraph",
    "repro.analysis.flow.taint",
    "repro.analysis.flow.durability",
    "repro.analysis.flow.lockset",
    "repro.analysis.flow.engine",
    "repro.cli",
    # The fault-injection engine is test harness, not enclave code: it
    # drives the system from outside (the attacker/operator position),
    # so it sits on the untrusted side of the SEC002/TCB boundary while
    # staying fully DET-governed (deterministic replay is its contract).
    "repro.faults.registry",
    "repro.faults.plan",
    "repro.faults.invariants",
    "repro.faults.workload",
    "repro.faults.explorer",
    "repro.faults.mutations",
    # The inference gateway tier sees only sealed requests and sealed
    # replies; batching, admission, and replica scheduling all run
    # outside the enclave (see docs/serving.md).
    "repro.serving.gateway",
    "repro.serving.batcher",
    "repro.serving.replica_pool",
    "repro.serving.admission",
    # The simulated-cluster substrate models hosts, wires, and the
    # event loop — operator-side infrastructure around the enclaves,
    # never code running inside one.  It stays DET-governed: the whole
    # point of the substrate is deterministic same-seed replay.
    "repro.cluster.loop",
    "repro.cluster.host",
    "repro.cluster.network",
    "repro.cluster.link",
    "repro.cluster.worker",
    "repro.cluster.fabric",
    "repro.cluster.runtime",
    # Federated orchestration is operator-side: the coordinator's round
    # driving, the clients' local-training harness, and session/shard
    # assembly all handle sealed deltas from outside the enclave.  The
    # trusted remainder — repro.federated.merkle / aggregate / ledger —
    # is exactly the commitment and merge math the aggregator enclave
    # runs over unsealed bytes.
    "repro.federated.client",
    "repro.federated.coordinator",
    "repro.federated.session",
    "repro.federated.shards",
)

# ----------------------------------------------------------------------
# DET001 — sim-time determinism
# ----------------------------------------------------------------------

#: Module prefixes exempt from DET001: the wall-clock observability lane
#: (dual-clock tracing *needs* ``perf_counter``), benchmark harnesses
#: (they measure real time by design), and the analysis tooling itself.
DET_EXEMPT_PREFIXES: Tuple[str, ...] = (
    "repro.obs",
    "repro.bench",
    "repro.analysis",
    "repro.cli",
)

#: Fully qualified callables that read a wall clock or host entropy.
NONDETERMINISTIC_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Module-level RNG functions drawing from hidden global state.
GLOBAL_RNG_FUNCTIONS: FrozenSet[str] = frozenset(
    {f"random.{name}" for name in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "seed", "getrandbits",
    )}
    | {f"numpy.random.{name}" for name in (
        "rand", "randn", "randint", "random", "random_sample", "seed",
        "shuffle", "permutation", "choice", "normal", "uniform",
        "standard_normal", "bytes",
    )}
)

#: Constructors that must receive an explicit seed to be deterministic.
SEEDED_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "repro.sgx.rand.SgxRandom",
    }
)

# ----------------------------------------------------------------------
# ALLOC001 — allocation-free serve hot path
# ----------------------------------------------------------------------

#: Modules whose steady state must not allocate numpy arrays: the
#: batched serve path and the arena that backs it.  Everything they
#: touch after warmup is an arena view; the arena's own miss path is
#: the sanctioned setup-time exception and carries per-line rationales.
HOT_PATH_MODULES: Tuple[str, ...] = (
    "repro.core.serving",
    "repro.darknet.arena",
)

#: Numpy constructors that allocate a fresh array.  ``frombuffer`` and
#: ``reshape``/``view`` are deliberately absent — they alias existing
#: storage, which is exactly what the zero-copy path is built from.
NUMPY_ALLOCATOR_CALLS: FrozenSet[str] = frozenset(
    {f"numpy.{name}" for name in (
        "zeros", "empty", "ones", "full",
        "zeros_like", "empty_like", "ones_like", "full_like",
        "concatenate", "stack", "vstack", "hstack", "dstack",
        "pad", "tile", "repeat", "array", "copy",
    )}
)

# ----------------------------------------------------------------------
# LCK001 — lock-guarded fields
# ----------------------------------------------------------------------

#: Callables whose result is a mutual-exclusion primitive; a
#: ``self.X = threading.Lock()`` assignment marks ``X`` as a lock
#: attribute of the class.
LOCK_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"threading.Lock", "threading.RLock", "multiprocessing.Lock"}
)

#: Method names that mutate a container in place.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "append", "add", "update", "clear", "pop", "popitem", "remove",
        "extend", "insert", "setdefault", "discard", "appendleft",
    }
)


@dataclass(frozen=True)
class LintConfig:
    """Aggregated configuration handed to every rule.

    The defaults encode this repository's layout; tests build modified
    copies (``dataclasses.replace``) to exercise classification edges.
    """

    pm_protocol_modules: Tuple[str, ...] = PM_PROTOCOL_MODULES
    sec_implementation_modules: Tuple[str, ...] = SEC_IMPLEMENTATION_MODULES
    enclave_only_modules: Tuple[str, ...] = ENCLAVE_ONLY_MODULES
    enclave_only_names: FrozenSet[str] = ENCLAVE_ONLY_NAMES
    untrusted_modules: Tuple[str, ...] = UNTRUSTED_MODULES
    det_exempt_prefixes: Tuple[str, ...] = DET_EXEMPT_PREFIXES
    hot_path_modules: Tuple[str, ...] = HOT_PATH_MODULES

    # ------------------------------------------------------------------
    def is_pm_protocol_module(self, module: str) -> bool:
        return module in self.pm_protocol_modules

    def is_sec_implementation_module(self, module: str) -> bool:
        return any(
            module == m or module.startswith(m + ".")
            for m in self.sec_implementation_modules
        )

    def is_untrusted(self, module: str) -> bool:
        return module in self.untrusted_modules

    def is_hot_path(self, module: str) -> bool:
        """Whether ALLOC001 applies: the allocation-free serve path."""
        return module in self.hot_path_modules

    def is_det_governed(self, module: str) -> bool:
        """Whether DET001 applies: every module except the wall-clock
        observability lane, benchmarks, and the analysis tooling."""
        return not any(
            module == p or module.startswith(p + ".")
            for p in self.det_exempt_prefixes
        )


DEFAULT_CONFIG = LintConfig()
