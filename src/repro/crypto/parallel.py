"""Shared worker pools for the parallel sealing/unsealing pipeline.

The mirroring module fans per-buffer AES-GCM work across a
``ThreadPoolExecutor``.  The OpenSSL-backed
:class:`~repro.crypto.backend.CryptographyBackend` releases the GIL
during bulk cipher work, so on multi-core hosts the fan-out is a real
wall-clock win (the paper's Section VIII future work: "better exploit
system parallelism ... via threads in the untrusted runtime").

Workers are stateless, so pools are shared process-wide and keyed by
thread count — a simulation may construct many short-lived
``MirrorModule`` instances (one per crash/resume cycle) and must not
leak a pool per instance.  ``REPRO_CRYPTO_THREADS`` overrides the
default worker count.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

#: Environment variable overriding the default crypto worker count.
THREADS_ENV_VAR = "REPRO_CRYPTO_THREADS"

#: Upper bound on pooled workers; AES-GCM at OpenSSL speed saturates
#: memory bandwidth long before this.
MAX_CRYPTO_THREADS = 16

_pools: Dict[int, ThreadPoolExecutor] = {}
_pools_lock = threading.Lock()


def resolve_crypto_threads(requested: Optional[int] = None) -> int:
    """Resolve a worker count: explicit request > env var > CPU count."""
    if requested is None:
        env = os.environ.get(THREADS_ENV_VAR, "").strip()
        try:
            requested = int(env) if env else None
        except ValueError:
            requested = None  # tolerate garbage in the environment
        if requested is None:
            requested = os.cpu_count() or 1
    if requested < 1:
        raise ValueError(f"crypto_threads must be >= 1, got {requested}")
    return min(requested, MAX_CRYPTO_THREADS)


def get_executor(threads: int) -> ThreadPoolExecutor:
    """A shared executor with ``threads`` workers (created lazily)."""
    if threads < 2:
        raise ValueError("executors are only used for threads >= 2")
    if threads > MAX_CRYPTO_THREADS:
        raise ValueError(
            f"crypto_threads capped at {MAX_CRYPTO_THREADS}, got {threads}"
        )
    with _pools_lock:
        pool = _pools.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix=f"repro-crypto-{threads}"
            )
            _pools[threads] = pool
        return pool


def shutdown_executors() -> None:
    """Tear down all shared pools (tests and benchmark teardown)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)
