"""Pluggable AEAD backends for the encryption engine.

Two implementations of the same interface:

* :class:`PureBackend` — the from-scratch AES-GCM in this package.
  Always available; slow (pure Python), intended for verification and as
  a fallback.
* :class:`CryptographyBackend` — the host ``cryptography`` wheel
  (OpenSSL AES-GCM).  Used by default when importable so that the
  functional experiments (which encrypt megabytes of model weights per
  mirror operation) run at practical wall-clock speed.

The test suite cross-validates the two backends on random inputs.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.crypto import gcm as _gcm


class IntegrityError(Exception):
    """Raised when AEAD authentication fails (tampered or corrupt data)."""


class AeadBackend(abc.ABC):
    """AES-GCM with detached 16-byte tags."""

    name: str

    @abc.abstractmethod
    def encrypt(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)``."""

    @abc.abstractmethod
    def decrypt(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        """Return the plaintext; raise :class:`IntegrityError` on tag mismatch."""


class PureBackend(AeadBackend):
    """The from-scratch AES-GCM implementation in :mod:`repro.crypto.gcm`."""

    name = "pure-python"

    def encrypt(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        return _gcm.gcm_encrypt(key, iv, plaintext, aad)

    def decrypt(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        try:
            return _gcm.gcm_decrypt(key, iv, ciphertext, tag, aad)
        except ValueError as exc:
            raise IntegrityError(str(exc)) from exc


class CryptographyBackend(AeadBackend):
    """AES-GCM via the ``cryptography`` wheel (OpenSSL)."""

    name = "cryptography"

    def __init__(self) -> None:
        from cryptography.hazmat.primitives.ciphers.aead import AESGCM

        self._aesgcm_cls = AESGCM

    def encrypt(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        sealed = self._aesgcm_cls(key).encrypt(iv, plaintext, aad or None)
        return sealed[:-16], sealed[-16:]

    def decrypt(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        from cryptography.exceptions import InvalidTag

        try:
            return self._aesgcm_cls(key).decrypt(iv, ciphertext + tag, aad or None)
        except InvalidTag as exc:
            raise IntegrityError("GCM authentication tag mismatch") from exc


_default: Optional[AeadBackend] = None


def default_backend() -> AeadBackend:
    """The process-wide default backend (fast when available)."""
    global _default
    if _default is None:
        try:
            _default = CryptographyBackend()
        except ImportError:
            _default = PureBackend()
    return _default
