"""Pluggable AEAD backends for the encryption engine.

Two implementations of the same interface:

* :class:`PureBackend` — the from-scratch AES-GCM in this package.
  Always available; slow (pure Python), intended for verification and as
  a fallback.
* :class:`CryptographyBackend` — the host ``cryptography`` wheel
  (OpenSSL AES-GCM).  Used by default when importable so that the
  functional experiments (which encrypt megabytes of model weights per
  mirror operation) run at practical wall-clock speed.

Besides the plain ``encrypt``/``decrypt`` pair, backends expose
``encrypt_into``/``decrypt_into`` variants that write their output into
a caller-provided buffer.  The base class supplies a correct
copy-through default; :class:`CryptographyBackend` overrides both with
OpenSSL ``update_into`` so the mirroring hot path can seal directly
into persistent-memory staging buffers without intermediate ``bytes``
allocations.  OpenSSL releases the GIL during bulk cipher work, which
is what makes the parallel sealing pipeline in
:mod:`repro.core.mirror` a real multi-core win.

The process-wide default backend can be pinned with
:func:`set_default_backend` / :func:`reset_default_backend`, or via the
``REPRO_CRYPTO_BACKEND`` environment variable (``pure`` or
``cryptography``), so tests and benchmarks do not have to mutate module
globals by hand.

The test suite cross-validates the two backends on random inputs.
"""

from __future__ import annotations

import abc
import os
from typing import Optional, Tuple, Union

from repro.crypto import gcm as _gcm

#: Environment variable naming the backend to use process-wide.
BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"

# ``update_into`` requires the output buffer to extend block_size - 1
# bytes past the data being written (OpenSSL may buffer a partial
# block); sealed-buffer slots always have >= 28 spare bytes, and
# ``decrypt_into`` routes the final bytes through a bounce buffer.
_UPDATE_INTO_SLACK = 15


class IntegrityError(Exception):
    """Raised when AEAD authentication fails (tampered or corrupt data)."""


class AeadBackend(abc.ABC):
    """AES-GCM with detached 16-byte tags."""

    name: str

    @abc.abstractmethod
    def encrypt(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)``."""

    @abc.abstractmethod
    def decrypt(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        """Return the plaintext; raise :class:`IntegrityError` on tag mismatch."""

    def encrypt_into(
        self,
        key: bytes,
        iv: bytes,
        plaintext: bytes,
        out: memoryview,
        aad: bytes = b"",
    ) -> bytes:
        """Encrypt ``plaintext`` into ``out[:len(plaintext)]``; return the tag.

        ``out`` must be a writable buffer of at least
        ``len(plaintext) + 15`` bytes (cipher-block slack).  The default
        implementation round-trips through :meth:`encrypt`.
        """
        ciphertext, tag = self.encrypt(key, iv, bytes(plaintext), aad)
        out[: len(ciphertext)] = ciphertext
        return tag

    def decrypt_into(
        self,
        key: bytes,
        iv: bytes,
        ciphertext: bytes,
        tag: bytes,
        out: memoryview,
        aad: bytes = b"",
    ) -> int:
        """Decrypt into ``out[:len(ciphertext)]``; return the byte count.

        Raises :class:`IntegrityError` on tag mismatch.  ``out`` may be
        exactly ``len(ciphertext)`` bytes.  Note the GCM caveat: the
        plaintext has already been written into ``out`` when a tag
        mismatch is detected — callers must treat ``out`` as garbage if
        this raises.
        """
        plaintext = self.decrypt(key, iv, bytes(ciphertext), tag, aad)
        out[: len(plaintext)] = plaintext
        return len(plaintext)


class PureBackend(AeadBackend):
    """The from-scratch AES-GCM implementation in :mod:`repro.crypto.gcm`."""

    name = "pure-python"

    def encrypt(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        return _gcm.gcm_encrypt(key, iv, plaintext, aad)

    def decrypt(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        try:
            return _gcm.gcm_decrypt(key, iv, ciphertext, tag, aad)
        except ValueError as exc:
            raise IntegrityError(str(exc)) from exc


class CryptographyBackend(AeadBackend):
    """AES-GCM via the ``cryptography`` wheel (OpenSSL)."""

    name = "cryptography"

    def __init__(self) -> None:
        from cryptography.exceptions import InvalidTag
        from cryptography.hazmat.primitives.ciphers import (
            Cipher,
            algorithms,
            modes,
        )
        from cryptography.hazmat.primitives.ciphers.aead import AESGCM

        self._aesgcm_cls = AESGCM
        self._cipher_cls = Cipher
        self._aes_cls = algorithms.AES
        self._gcm_cls = modes.GCM
        self._invalid_tag_cls = InvalidTag

    def encrypt(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
    ) -> Tuple[bytes, bytes]:
        sealed = self._aesgcm_cls(key).encrypt(iv, plaintext, aad or None)
        return sealed[:-16], sealed[-16:]

    def decrypt(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        try:
            return self._aesgcm_cls(key).decrypt(iv, ciphertext + tag, aad or None)
        except self._invalid_tag_cls as exc:
            raise IntegrityError("GCM authentication tag mismatch") from exc

    def encrypt_into(
        self,
        key: bytes,
        iv: bytes,
        plaintext: bytes,
        out: memoryview,
        aad: bytes = b"",
    ) -> bytes:
        encryptor = self._cipher_cls(self._aes_cls(key), self._gcm_cls(iv)).encryptor()
        if aad:
            encryptor.authenticate_additional_data(aad)
        n = len(plaintext)
        written = encryptor.update_into(plaintext, out[: n + _UPDATE_INTO_SLACK])
        encryptor.finalize()
        if written != n:  # pragma: no cover - GCM is a stream mode
            raise RuntimeError(f"GCM wrote {written} of {n} bytes")
        return encryptor.tag

    def decrypt_into(
        self,
        key: bytes,
        iv: bytes,
        ciphertext: bytes,
        tag: bytes,
        out: memoryview,
        aad: bytes = b"",
    ) -> int:
        decryptor = self._cipher_cls(
            self._aes_cls(key), self._gcm_cls(iv, bytes(tag))
        ).decryptor()
        if aad:
            decryptor.authenticate_additional_data(aad)
        ct = memoryview(ciphertext)
        n = len(ct)
        # ``out`` may be exactly n bytes, but update_into demands 15
        # bytes of slack past the data: stream all but the final bytes
        # directly, bounce the tail through a small scratch buffer.
        head = max(0, n - _UPDATE_INTO_SLACK)
        written = 0
        if head:
            written = decryptor.update_into(ct[:head], out[:n])
        scratch = bytearray(2 * _UPDATE_INTO_SLACK)
        tail = decryptor.update_into(ct[head:], scratch) if head < n else 0
        try:
            decryptor.finalize()
        except self._invalid_tag_cls as exc:
            raise IntegrityError("GCM authentication tag mismatch") from exc
        out[written : written + tail] = scratch[:tail]
        if written + tail != n:  # pragma: no cover - GCM is a stream mode
            raise RuntimeError(f"GCM wrote {written + tail} of {n} bytes")
        return n


_BACKEND_FACTORIES = {
    "pure": PureBackend,
    "pure-python": PureBackend,
    "cryptography": CryptographyBackend,
}

_default: Optional[AeadBackend] = None


def make_backend(name: str) -> AeadBackend:
    """Instantiate a backend by name (``pure`` or ``cryptography``)."""
    try:
        factory = _BACKEND_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown crypto backend {name!r}; "
            f"choose from {sorted(set(_BACKEND_FACTORIES))}"
        ) from None
    return factory()


def set_default_backend(backend: Union[AeadBackend, str]) -> AeadBackend:
    """Pin the process-wide default backend; returns the instance.

    Accepts an :class:`AeadBackend` instance or a name understood by
    :func:`make_backend`.
    """
    global _default
    if isinstance(backend, str):
        backend = make_backend(backend)
    if not isinstance(backend, AeadBackend):
        raise TypeError(f"not an AeadBackend: {backend!r}")
    _default = backend
    return backend


def reset_default_backend() -> None:
    """Drop any pinned default; the next :func:`default_backend` call
    re-resolves from ``REPRO_CRYPTO_BACKEND`` or auto-detection."""
    global _default
    _default = None


def default_backend() -> AeadBackend:
    """The process-wide default backend (fast when available).

    Resolution order: a backend pinned via :func:`set_default_backend`,
    then the ``REPRO_CRYPTO_BACKEND`` environment variable, then
    :class:`CryptographyBackend` if importable, else :class:`PureBackend`.
    """
    global _default
    if _default is None:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if env:
            _default = make_backend(env)
        else:
            try:
                _default = CryptographyBackend()
            except ImportError:
                _default = PureBackend()
    return _default
