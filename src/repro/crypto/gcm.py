"""From-scratch AES-GCM (NIST SP 800-38D).

Implements GHASH over GF(2^128) and the GCM encrypt/decrypt composition
on top of :class:`repro.crypto.aes.AES`.  This is the reference backend;
it is exact but slow (pure Python), so the encryption engine prefers the
host ``cryptography`` wheel when present and uses this module for
cross-validation and as a dependency-free fallback.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.aes import AES

_R = 0xE1 << 120  # GCM reduction polynomial (bit-reflected representation)
_MASK128 = (1 << 128) - 1


def _gf_mult(x: int, y: int) -> int:
    """Multiply two elements of GF(2^128) in GCM's bit order."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h: bytes, data: bytes) -> bytes:
    """GHASH_H over ``data`` (already padded/concatenated by the caller)."""
    if len(h) != 16:
        raise ValueError("GHASH subkey must be 16 bytes")
    if len(data) % 16 != 0:
        raise ValueError("GHASH input must be a multiple of 16 bytes")
    h_int = int.from_bytes(h, "big")
    y = 0
    for i in range(0, len(data), 16):
        block = int.from_bytes(data[i : i + 16], "big")
        y = _gf_mult(y ^ block, h_int)
    return y.to_bytes(16, "big")


def _pad16(data: bytes) -> bytes:
    rem = len(data) % 16
    return data if rem == 0 else data + b"\x00" * (16 - rem)


def _inc32(block: int) -> int:
    """Increment the low 32 bits of a 128-bit counter block."""
    high = block & ~0xFFFFFFFF
    low = (block + 1) & 0xFFFFFFFF
    return high | low


def _ctr_keystream(cipher: AES, j0: int, nbytes: int) -> bytes:
    out = bytearray()
    counter = j0
    for _ in range((nbytes + 15) // 16):
        counter = _inc32(counter)
        out += cipher.encrypt_block(counter.to_bytes(16, "big"))
    return bytes(out[:nbytes])


def _derive_j0(cipher: AES, h: bytes, iv: bytes) -> int:
    if len(iv) == 12:
        return int.from_bytes(iv + b"\x00\x00\x00\x01", "big")
    ghash_in = _pad16(iv) + (8 * len(iv)).to_bytes(16, "big")
    return int.from_bytes(ghash(h, ghash_in), "big")


def _auth_tag(
    cipher: AES, h: bytes, j0: int, aad: bytes, ciphertext: bytes
) -> bytes:
    lengths = (8 * len(aad)).to_bytes(8, "big") + (8 * len(ciphertext)).to_bytes(
        8, "big"
    )
    s = ghash(h, _pad16(aad) + _pad16(ciphertext) + lengths)
    e_j0 = cipher.encrypt_block(j0.to_bytes(16, "big"))
    return bytes(a ^ b for a, b in zip(s, e_j0))


def gcm_encrypt(
    key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b""
) -> Tuple[bytes, bytes]:
    """AES-GCM encrypt; returns ``(ciphertext, 16-byte tag)``."""
    cipher = AES(key)
    h = cipher.encrypt_block(b"\x00" * 16)
    j0 = _derive_j0(cipher, h, iv)
    keystream = _ctr_keystream(cipher, j0, len(plaintext))
    ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
    tag = _auth_tag(cipher, h, j0, aad, ciphertext)
    return ciphertext, tag


def gcm_decrypt(
    key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
) -> bytes:
    """AES-GCM decrypt; raises :class:`ValueError` on authentication failure."""
    cipher = AES(key)
    h = cipher.encrypt_block(b"\x00" * 16)
    j0 = _derive_j0(cipher, h, iv)
    expected = _auth_tag(cipher, h, j0, aad, ciphertext)
    # Constant-time comparison is moot in a simulation, but keep the habit.
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    if len(expected) != len(tag) or diff != 0:
        raise ValueError("GCM authentication tag mismatch")
    keystream = _ctr_keystream(cipher, j0, len(ciphertext))
    return bytes(c ^ k for c, k in zip(ciphertext, keystream))
