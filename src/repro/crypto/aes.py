"""From-scratch AES block cipher (FIPS 197).

Only block *encryption* is implemented: GCM (like all CTR-based modes)
never needs the inverse cipher.  Supports 128/192/256-bit keys; Plinius
uses 128-bit keys for all operations.

This is the reference implementation backing :class:`PureBackend`; the
test suite validates it against the FIPS 197 vectors and against the host
``cryptography`` wheel.
"""

from __future__ import annotations

from typing import List

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a


# Precomputed GF(2^8) doubling and tripling tables for MixColumns.
_MUL2 = [_xtime(i) for i in range(256)]
_MUL3 = [_MUL2[i] ^ i for i in range(256)]


class AES:
    """AES block cipher restricted to the forward (encrypt) direction."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self._round_keys = self._expand_key(self.key)
        self.rounds = len(self._round_keys) // 4 - 1

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        """FIPS 197 key expansion; returns a flat list of 32-bit words."""
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )  # SubWord
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        rk = self._round_keys

        def add_round_key(rnd: int) -> None:
            for c in range(4):
                w = rk[4 * rnd + c]
                state[4 * c] ^= (w >> 24) & 0xFF
                state[4 * c + 1] ^= (w >> 16) & 0xFF
                state[4 * c + 2] ^= (w >> 8) & 0xFF
                state[4 * c + 3] ^= w & 0xFF

        add_round_key(0)
        for rnd in range(1, self.rounds):
            # SubBytes
            state = [_SBOX[b] for b in state]
            # ShiftRows (state is column-major: state[4c + r])
            state = [
                state[0], state[5], state[10], state[15],
                state[4], state[9], state[14], state[3],
                state[8], state[13], state[2], state[7],
                state[12], state[1], state[6], state[11],
            ]
            # MixColumns
            mixed = []
            for c in range(4):
                s0, s1, s2, s3 = state[4 * c : 4 * c + 4]
                mixed.extend(
                    (
                        _MUL2[s0] ^ _MUL3[s1] ^ s2 ^ s3,
                        s0 ^ _MUL2[s1] ^ _MUL3[s2] ^ s3,
                        s0 ^ s1 ^ _MUL2[s2] ^ _MUL3[s3],
                        _MUL3[s0] ^ s1 ^ s2 ^ _MUL2[s3],
                    )
                )
            state = mixed
            add_round_key(rnd)
        # Final round: no MixColumns.
        state = [_SBOX[b] for b in state]
        state = [
            state[0], state[5], state[10], state[15],
            state[4], state[9], state[14], state[3],
            state[8], state[13], state[2], state[7],
            state[12], state[1], state[6], state[11],
        ]
        add_round_key(self.rounds)
        return bytes(state)
