"""Cryptography for the Plinius encryption engine.

Plinius encrypts every model-parameter buffer and every training-data row
with AES-GCM (128-bit key, 12-byte random IV, 16-byte MAC) using the
Intel SGX SDK implementation.  This package provides:

* :mod:`repro.crypto.aes` — a from-scratch AES block cipher,
* :mod:`repro.crypto.gcm` — a from-scratch GCM mode (GHASH in GF(2^128)),
* :mod:`repro.crypto.backend` — pluggable AEAD backends: the pure-Python
  reference above, and a fast backend using the host ``cryptography``
  wheel when available (cross-validated against the reference in tests),
* :mod:`repro.crypto.engine` — the Plinius sealed-buffer format
  (ciphertext ‖ IV ‖ MAC, 28 bytes of metadata per buffer — Section VI,
  "CPU and memory overhead").
"""

from repro.crypto.aes import AES
from repro.crypto.backend import (
    BACKEND_ENV_VAR,
    AeadBackend,
    CryptographyBackend,
    IntegrityError,
    PureBackend,
    default_backend,
    make_backend,
    reset_default_backend,
    set_default_backend,
)
from repro.crypto.engine import (
    IV_SIZE,
    KEY_SIZE,
    MAC_SIZE,
    SEAL_OVERHEAD,
    EncryptionEngine,
)
from repro.crypto.gcm import gcm_decrypt, gcm_encrypt, ghash
from repro.crypto.parallel import (
    MAX_CRYPTO_THREADS,
    THREADS_ENV_VAR,
    get_executor,
    resolve_crypto_threads,
    shutdown_executors,
)

__all__ = [
    "AES",
    "AeadBackend",
    "PureBackend",
    "CryptographyBackend",
    "IntegrityError",
    "default_backend",
    "make_backend",
    "set_default_backend",
    "reset_default_backend",
    "BACKEND_ENV_VAR",
    "THREADS_ENV_VAR",
    "MAX_CRYPTO_THREADS",
    "get_executor",
    "resolve_crypto_threads",
    "shutdown_executors",
    "gcm_encrypt",
    "gcm_decrypt",
    "ghash",
    "EncryptionEngine",
    "IV_SIZE",
    "MAC_SIZE",
    "KEY_SIZE",
    "SEAL_OVERHEAD",
]
