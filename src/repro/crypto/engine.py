"""The Plinius encryption engine and sealed-buffer format.

Per the paper (Section IV, "Mirroring module"): every plaintext buffer is
encrypted with AES-GCM under a 128-bit key; a fresh random 12-byte IV is
generated per encryption with ``sgx_read_rand``; the IV and the 16-byte
MAC are appended to the encrypted buffer.  That gives exactly 28 bytes of
metadata per sealed buffer — the paper's "CPU and memory overhead"
section counts 140 B of PM metadata per layer from 5 buffers/layer.

Sealed layout: ``ciphertext ‖ IV (12 B) ‖ MAC (16 B)``.

Two API generations coexist:

* :meth:`EncryptionEngine.seal` / :meth:`EncryptionEngine.unseal` —
  allocate and return ``bytes`` (simple, copies freely);
* :meth:`EncryptionEngine.seal_into` / :meth:`EncryptionEngine.unseal_from`
  — write ciphertext/plaintext directly into a caller-provided writable
  buffer (a ``memoryview`` over a PM staging area or a live numpy
  parameter array), eliminating the per-buffer ``bytes`` concatenations
  on the mirroring hot path.

Both generations accept an explicit ``iv`` so callers that fan sealing
work across threads can draw IVs from the (deterministic, single-
threaded) random source *before* dispatch, keeping sealed output
byte-identical to the serial path.  Stats counters are guarded by a
lock so concurrent seals/unseals never drop updates.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Optional, Union

from repro.crypto.backend import AeadBackend, default_backend
from repro.faults import plan as faultplan
from repro.obs.context import current_trace
from repro.obs.recorder import NULL_RECORDER

KEY_SIZE = 16  # bytes; "PLINIUS uses a 128 bit key for all operations"
IV_SIZE = 12
MAC_SIZE = 16
SEAL_OVERHEAD = IV_SIZE + MAC_SIZE  # 28 bytes per sealed buffer

RandomSource = Callable[[int], bytes]

Buffer = Union[bytes, bytearray, memoryview]


class EncryptionEngine:
    """Seals and unseals buffers under one AES-GCM key.

    Parameters
    ----------
    key:
        16-byte AES key (provisioned via remote attestation, generated
        with ``sgx_read_rand``, or unsealed from storage).
    rand:
        Random source used for IV generation; defaults to ``os.urandom``.
        Experiments inject the deterministic
        :func:`repro.sgx.rand.sgx_read_rand` here for reproducibility.
    backend:
        AEAD backend; defaults to the fastest available.
    observer:
        Trace recorder mirroring the engine's stats into the
        ``crypto.*`` counters (``crypto.seals``, ``crypto.bytes_sealed``,
        ...); defaults to the null recorder.  Both the ``stats`` dict
        and the observer are updated under the same lock, so they cannot
        drift even with concurrent seals from the crypto pool.
    """

    #: stats key -> counter name mirrored to the observer.
    _COUNTER_NAMES = {
        "seals": "crypto.seals",
        "unseals": "crypto.unseals",
        "bytes_sealed": "crypto.bytes_sealed",
        "bytes_unsealed": "crypto.bytes_unsealed",
    }

    #: stats key -> request-plane leaf span name.
    _SPAN_NAMES = {"seals": "crypto.seal", "unseals": "crypto.unseal"}

    def __init__(
        self,
        key: bytes,
        rand: Optional[RandomSource] = None,
        backend: Optional[AeadBackend] = None,
        observer=NULL_RECORDER,
    ) -> None:
        if len(key) != KEY_SIZE:
            raise ValueError(
                f"Plinius uses {8 * KEY_SIZE}-bit keys; got {len(key)} bytes"
            )
        self.key = bytes(key)
        self._rand = rand if rand is not None else os.urandom  # repro: noqa[DET001] -- GCM IVs must come from real entropy in production; tests inject a counter source
        self.backend = backend if backend is not None else default_backend()
        self.observer = observer if observer is not None else NULL_RECORDER
        self._stats_lock = threading.Lock()
        self.stats = {"seals": 0, "unseals": 0, "bytes_sealed": 0, "bytes_unsealed": 0}

    @classmethod
    def generate_key(cls, rand: Optional[RandomSource] = None) -> bytes:
        """Generate a fresh 128-bit key (in-enclave path of Section IV)."""
        source = rand if rand is not None else os.urandom  # repro: noqa[DET001] -- key generation requires real entropy outside tests
        return source(KEY_SIZE)

    def new_iv(self) -> bytes:
        """Draw a fresh 12-byte IV from the engine's random source.

        The parallel sealing pipeline calls this serially (IV order is
        part of the deterministic sealed output) before fanning the
        actual encryption across threads.
        """
        iv = self._rand(IV_SIZE)
        if len(iv) != IV_SIZE:
            raise ValueError(f"random source produced {len(iv)} bytes, not {IV_SIZE}")
        return iv

    def _count(self, op: str, byte_op: str, nbytes: int) -> None:
        with self._stats_lock:
            self.stats[op] += 1
            self.stats[byte_op] += nbytes
            observer = self.observer
            if observer.enabled:
                observer.count(self._COUNTER_NAMES[op])
                observer.count(self._COUNTER_NAMES[byte_op], nbytes)
        if observer.enabled:
            # Request-plane leaf: when a causal trace context is active
            # (the batched serve path), pin a zero-width crypto span
            # under the request's sgx.session span so the tree reaches
            # all the way down to the AEAD call.  Untraced paths pay one
            # thread-local read.
            ctx = current_trace()
            if ctx is not None:
                recorder = ctx.recorder
                wall = recorder.wall_now()
                recorder.complete(
                    self._SPAN_NAMES[op],
                    sim_start=ctx.sim_now,
                    sim_end=ctx.sim_now,
                    wall_start=wall,
                    wall_end=wall,
                    category="crypto",
                    args={"bytes": nbytes},
                    parent=ctx.parent,
                    trace_id=ctx.trace_id,
                )

    def seal(
        self, plaintext: Buffer, aad: bytes = b"", iv: Optional[bytes] = None
    ) -> bytes:
        """Encrypt ``plaintext``; returns ``ciphertext ‖ IV ‖ MAC``."""
        iv = self.new_iv() if iv is None else iv
        active = faultplan.ACTIVE
        if active.enabled:
            active.mutate("crypto.seal", iv)
        ciphertext, tag = self.backend.encrypt(self.key, iv, bytes(plaintext), aad)
        self._count("seals", "bytes_sealed", len(plaintext))
        return ciphertext + iv + tag

    def seal_into(
        self,
        plaintext: Buffer,
        out: Union[bytearray, memoryview],
        aad: bytes = b"",
        iv: Optional[bytes] = None,
    ) -> int:
        """Seal ``plaintext`` directly into ``out``; returns bytes written.

        ``out`` must be a writable buffer of at least
        ``sealed_size(len(plaintext))`` bytes; the sealed record
        (``ciphertext ‖ IV ‖ MAC``) is written at its start with no
        intermediate allocations on backends that support it.
        """
        n = len(plaintext)
        sealed_size = n + SEAL_OVERHEAD
        view = memoryview(out)
        if len(view) < sealed_size:
            raise ValueError(
                f"output buffer holds {len(view)} bytes, "
                f"sealed record needs {sealed_size}"
            )
        iv = self.new_iv() if iv is None else iv
        active = faultplan.ACTIVE
        if active.enabled:
            active.mutate("crypto.seal", iv)
        tag = self.backend.encrypt_into(self.key, iv, plaintext, view, aad)
        view[n : n + IV_SIZE] = iv
        view[n + IV_SIZE : sealed_size] = tag
        self._count("seals", "bytes_sealed", n)
        return sealed_size

    def unseal(self, sealed: Buffer, aad: bytes = b"") -> bytes:
        """Decrypt a sealed buffer; raises
        :class:`~repro.crypto.backend.IntegrityError` if tampered."""
        sealed = bytes(sealed)
        if len(sealed) < SEAL_OVERHEAD:
            raise ValueError(
                f"sealed buffer too short: {len(sealed)} < {SEAL_OVERHEAD}"
            )
        active = faultplan.ACTIVE
        if active.enabled:
            tampered = active.mutate("crypto.unseal", sealed)
            if tampered is not None:
                sealed = tampered
        ciphertext = sealed[:-SEAL_OVERHEAD]
        iv = sealed[-SEAL_OVERHEAD:-MAC_SIZE]
        tag = sealed[-MAC_SIZE:]
        plaintext = self.backend.decrypt(self.key, iv, ciphertext, tag, aad)
        self._count("unseals", "bytes_unsealed", len(plaintext))
        return plaintext

    def unseal_from(
        self,
        sealed: Buffer,
        out: Union[bytearray, memoryview],
        aad: bytes = b"",
    ) -> int:
        """Decrypt a sealed record directly into ``out``; returns bytes.

        ``out`` must be writable and exactly as large as the plaintext
        (``len(sealed) - SEAL_OVERHEAD``) or larger.  GCM caveat: on an
        :class:`~repro.crypto.backend.IntegrityError` the buffer already
        holds unauthenticated garbage — callers must discard it.
        """
        view = memoryview(sealed)
        if len(view) < SEAL_OVERHEAD:
            raise ValueError(
                f"sealed buffer too short: {len(view)} < {SEAL_OVERHEAD}"
            )
        active = faultplan.ACTIVE
        if active.enabled:
            tampered = active.mutate("crypto.unseal", bytes(view))
            if tampered is not None:
                view = memoryview(tampered)
        n = len(view) - SEAL_OVERHEAD
        iv = bytes(view[n : n + IV_SIZE])
        tag = bytes(view[n + IV_SIZE :])
        out_view = memoryview(out)
        if len(out_view) < n:
            raise ValueError(
                f"output buffer holds {len(out_view)} bytes, plaintext is {n}"
            )
        self.backend.decrypt_into(self.key, iv, view[:n], tag, out_view[:n], aad)
        self._count("unseals", "bytes_unsealed", n)
        return n

    @staticmethod
    def sealed_size(plaintext_size: int) -> int:
        """Size on PM of a sealed buffer for ``plaintext_size`` bytes."""
        return plaintext_size + SEAL_OVERHEAD
