"""The Plinius encryption engine and sealed-buffer format.

Per the paper (Section IV, "Mirroring module"): every plaintext buffer is
encrypted with AES-GCM under a 128-bit key; a fresh random 12-byte IV is
generated per encryption with ``sgx_read_rand``; the IV and the 16-byte
MAC are appended to the encrypted buffer.  That gives exactly 28 bytes of
metadata per sealed buffer — the paper's "CPU and memory overhead"
section counts 140 B of PM metadata per layer from 5 buffers/layer.

Sealed layout: ``ciphertext ‖ IV (12 B) ‖ MAC (16 B)``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.crypto.backend import AeadBackend, default_backend

KEY_SIZE = 16  # bytes; "PLINIUS uses a 128 bit key for all operations"
IV_SIZE = 12
MAC_SIZE = 16
SEAL_OVERHEAD = IV_SIZE + MAC_SIZE  # 28 bytes per sealed buffer

RandomSource = Callable[[int], bytes]


class EncryptionEngine:
    """Seals and unseals buffers under one AES-GCM key.

    Parameters
    ----------
    key:
        16-byte AES key (provisioned via remote attestation, generated
        with ``sgx_read_rand``, or unsealed from storage).
    rand:
        Random source used for IV generation; defaults to ``os.urandom``.
        Experiments inject the deterministic
        :func:`repro.sgx.rand.sgx_read_rand` here for reproducibility.
    backend:
        AEAD backend; defaults to the fastest available.
    """

    def __init__(
        self,
        key: bytes,
        rand: Optional[RandomSource] = None,
        backend: Optional[AeadBackend] = None,
    ) -> None:
        if len(key) != KEY_SIZE:
            raise ValueError(
                f"Plinius uses {8 * KEY_SIZE}-bit keys; got {len(key)} bytes"
            )
        self.key = bytes(key)
        self._rand = rand if rand is not None else os.urandom
        self.backend = backend if backend is not None else default_backend()
        self.stats = {"seals": 0, "unseals": 0, "bytes_sealed": 0, "bytes_unsealed": 0}

    @classmethod
    def generate_key(cls, rand: Optional[RandomSource] = None) -> bytes:
        """Generate a fresh 128-bit key (in-enclave path of Section IV)."""
        source = rand if rand is not None else os.urandom
        return source(KEY_SIZE)

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt ``plaintext``; returns ``ciphertext ‖ IV ‖ MAC``."""
        iv = self._rand(IV_SIZE)
        ciphertext, tag = self.backend.encrypt(self.key, iv, plaintext, aad)
        self.stats["seals"] += 1
        self.stats["bytes_sealed"] += len(plaintext)
        return ciphertext + iv + tag

    def unseal(self, sealed: bytes, aad: bytes = b"") -> bytes:
        """Decrypt a sealed buffer; raises
        :class:`~repro.crypto.backend.IntegrityError` if tampered."""
        if len(sealed) < SEAL_OVERHEAD:
            raise ValueError(
                f"sealed buffer too short: {len(sealed)} < {SEAL_OVERHEAD}"
            )
        ciphertext = sealed[:-SEAL_OVERHEAD]
        iv = sealed[-SEAL_OVERHEAD:-MAC_SIZE]
        tag = sealed[-MAC_SIZE:]
        plaintext = self.backend.decrypt(self.key, iv, ciphertext, tag, aad)
        self.stats["unseals"] += 1
        self.stats["bytes_unsealed"] += len(plaintext)
        return plaintext

    @staticmethod
    def sealed_size(plaintext_size: int) -> int:
        """Size on PM of a sealed buffer for ``plaintext_size`` bytes."""
        return plaintext_size + SEAL_OVERHEAD
