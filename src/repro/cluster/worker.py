"""A pipeline stage worker placed on a cluster host.

:class:`ClusterWorker` is the legacy
:class:`~repro.distributed.worker.StageWorker` with its hardware
ownership moved to a :class:`~repro.cluster.host.Host`: the PM device is
the host's (durable across host death), the enclave is spawned on the
host (dies with it), and region attach goes through the host's
``open_region`` / ``format_region`` entry points — the seam the
``host-reboot-skip-recovery`` mutant breaks.  Compute, mirroring, fault
sites, and costs are inherited unchanged, so same-seed runs are
byte-identical to a legacy worker (the differential tests assert it).

``kill`` / ``resume`` become host power-fail / host boot: killing the
worker now *is* killing its host, which is the semantics the
``cluster.host_kill`` fault coordinate injects.
"""

from __future__ import annotations

from repro.cluster.host import Host
from repro.distributed.worker import ModelBuilder, StageWorker, sized_worker_pm
from repro.romulus.region import RomulusRegion
from repro.sgx.enclave import Enclave


class ClusterWorker(StageWorker):
    """One stage of a distributed job, resident on a named host."""

    def __init__(
        self,
        host: Host,
        build_model: ModelBuilder,
        job_key: bytes,
        seed: int = 7,
    ) -> None:
        self.host = host
        if host.pm is None:
            # Size the host's PM off a probe build; builders are
            # internally seeded, so the probe is free of side effects.
            host.ensure_pm(sized_worker_pm(build_model().param_bytes))
        super().__init__(
            host.name,
            host.profile,
            build_model,
            job_key,
            clock=host.clock,
            seed=seed,
            pm=host.pm,
        )

    # ------------------------------------------------------------------
    def _spawn_enclave(self) -> Enclave:
        return self.host.spawn_enclave()

    def _format_region(self, main_size: int) -> RomulusRegion:
        return self.host.format_region(main_size)

    def _open_region(self) -> RomulusRegion:
        return self.host.open_region()

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """The worker's host dies: enclave destroyed, PM power-fails."""
        self.host.power_fail()

    def resume(self) -> int:
        """Host reboot: fresh enclave + Romulus recovery from host PM."""
        self.host.boot()
        return super().resume()
