"""Host placement of one serving deployment on the cluster substrate.

The gateway tier and its replicas live on named hosts; the fabric maps a
replica index to its host and exposes the two control-plane fault
barriers the gateway consults:

* :meth:`dispatch_barrier` — the gateway -> replica edge a coalesced
  batch crosses.  An injected ``cluster.partition`` drop means the
  dispatch never reached the replica; the gateway retries on another
  replica under its exactly-once rule (routing around the partition).
* :meth:`completion_barrier` — the replica -> gateway edge the
  completion notification crosses.  An injected ``cluster.deliver`` drop
  means the replica finished but the gateway never heard; the batch is
  redispatched, and response nonces pinned by ``(session, seq)`` keep
  the rerun's bytes identical so clients still see exactly one reply.

Both barriers are sim-time free, so attaching a fabric changes nothing
about fault-free runs.
"""

from __future__ import annotations

from typing import Sequence


class ServingFabric:
    """Gateway-to-replica network placement for one deployment."""

    def __init__(
        self,
        cluster,
        gateway_host: str,
        replica_hosts: Sequence[str],
    ) -> None:
        if not replica_hosts:
            raise ValueError("a serving fabric needs at least one replica host")
        self.network = cluster.network
        self.gateway_host = gateway_host
        self.replica_hosts = tuple(replica_hosts)
        for replica_host in self.replica_hosts:
            if not self.network.connected(gateway_host, replica_host):
                self.network.connect(gateway_host, replica_host)

    def host_of(self, replica_index: int) -> str:
        """The host serving replica ``replica_index``."""
        return self.replica_hosts[replica_index % len(self.replica_hosts)]

    def dispatch_barrier(self, replica_index: int) -> None:
        """Fault barrier on the gateway -> replica dispatch edge."""
        self.network.barrier_send(
            self.gateway_host, self.host_of(replica_index)
        )

    def completion_barrier(self, replica_index: int) -> None:
        """Fault barrier on the replica -> gateway completion edge."""
        self.network.barrier_deliver(
            self.host_of(replica_index), self.gateway_host
        )
