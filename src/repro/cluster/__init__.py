"""The simulated-cluster substrate.

One deterministic runtime for every multi-component scenario in the
repo: named hosts owning their own PM/SSD/enclave stacks, a network
model with per-link latency/bandwidth and first-class partition/heal,
and a single event loop on the shared sim clock.  The inference
gateway, the distributed pipeline worker, and the fault explorer's
workloads all run on it — see ``docs/cluster.md``.
"""

from repro.cluster.fabric import ServingFabric
from repro.cluster.host import Host
from repro.cluster.link import ClusterLink
from repro.cluster.loop import EventLoop
from repro.cluster.network import (
    PARTITION_REPAIR_DELAY,
    ClusterNetwork,
    NetLink,
)
from repro.cluster.runtime import (
    Cluster,
    get_active_cluster,
    install_cluster,
    installed_cluster,
)
from repro.cluster.worker import ClusterWorker

__all__ = [
    "PARTITION_REPAIR_DELAY",
    "Cluster",
    "ClusterLink",
    "ClusterNetwork",
    "ClusterWorker",
    "EventLoop",
    "Host",
    "NetLink",
    "ServingFabric",
    "get_active_cluster",
    "install_cluster",
    "installed_cluster",
]
