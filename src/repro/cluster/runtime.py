"""A simulated deployment: hosts + network + one event loop.

:class:`Cluster` assembles the substrate pieces around one shared
:class:`~repro.simtime.clock.SimClock`: named
:class:`~repro.cluster.host.Host` members, the
:class:`~repro.cluster.network.ClusterNetwork` wiring them, and the
:class:`~repro.cluster.loop.EventLoop` everything schedules onto (with
the ``cluster.host_kill`` barrier armed, since the loop belongs to a
deployment with killable hosts).

Crash/repair is cluster-wide by composition: :meth:`power_fail` fails
every host (durable PM/SSD state survives, enclaves and in-flight
network state do not), and :meth:`boot` stands up a fresh event loop,
rebinds the network to it, and marks the hosts back up — the caller
then re-attaches regions via the hosts' recovery entry points.

An *installed* cluster is a process default like the obs recorder or
the active fault plan: :func:`install_cluster` makes a topology ambient
so components (the inference gateway) ride its event loop without
explicit plumbing.  The same leak discipline applies — tests restore
the previous value or the conftest guard fails them by name.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional

from repro.cluster.host import Host
from repro.cluster.loop import EventLoop
from repro.cluster.network import ClusterNetwork
from repro.simtime.clock import SimClock
from repro.simtime.profiles import ServerProfile


class Cluster:
    """All the simulated machines and wires of one deployment."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.hosts: Dict[str, Host] = {}
        self.loop = EventLoop(self.clock, kill_barrier=True)
        self.network = ClusterNetwork(self.clock, loop=self.loop)

    # ------------------------------------------------------------------
    def add_host(
        self,
        name: str,
        profile: ServerProfile,
        pm_size: Optional[int] = None,
        with_ssd: bool = False,
    ) -> Host:
        """Create and register a named host."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(
            name, self.clock, profile, pm_size=pm_size, with_ssd=with_ssd
        )
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(
                f"unknown host {name!r}; members: {sorted(self.hosts)}"
            ) from None

    def connect(self, a: str, b: str, **kwargs) -> None:
        """Wire two hosts (see :meth:`ClusterNetwork.connect`)."""
        self.network.connect(a, b, **kwargs)

    def connect_star(self, hub: str, *leaves: str, **kwargs) -> None:
        """Wire every leaf to ``hub`` (the federated/serving topology)."""
        for leaf in leaves:
            self.network.connect(hub, leaf, **kwargs)

    # ------------------------------------------------------------------
    # Cluster-wide crash / repair
    # ------------------------------------------------------------------
    def power_fail(self) -> None:
        """Fail-stop every host; durable state survives, nothing else."""
        for host in self.hosts.values():
            host.power_fail()

    def boot(self) -> EventLoop:
        """Stand the deployment back up with a fresh event loop."""
        self.loop = EventLoop(self.clock, kill_barrier=True)
        self.network.rebind(self.loop)
        for host in self.hosts.values():
            host.boot()
        return self.loop


# ----------------------------------------------------------------------
# The installable process default (null by default, like the fault plan)
# ----------------------------------------------------------------------

_ACTIVE: Optional[Cluster] = None


def install_cluster(cluster: Optional[Cluster]) -> Optional[Cluster]:
    """Make ``cluster`` the ambient topology; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cluster
    return previous


def get_active_cluster() -> Optional[Cluster]:
    """The ambient topology, or ``None`` when none is installed."""
    return _ACTIVE


@contextlib.contextmanager
def installed_cluster(cluster: Cluster) -> Iterator[Cluster]:
    """Scope an ambient topology, restoring the previous on exit."""
    previous = install_cluster(cluster)
    try:
        yield cluster
    finally:
        install_cluster(previous)
