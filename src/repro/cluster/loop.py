"""The substrate's single discrete-event loop on the shared sim clock.

Every component of a simulated deployment — the inference gateway, the
network model, test choreography — schedules onto one priority queue
ordered by ``(sim time, insertion order)``.  The loop semantics are the
inference gateway's original private scheduler, extracted verbatim so a
gateway running on the substrate is event-for-event identical to the
legacy implementation (``tests/test_cluster_equivalence.py`` proves the
traces, counters, and response bytes match).

Two dispatch paths exist per popped event:

* *registered kinds* (``register``): loop-owned event kinds such as the
  network's ``cluster.deliver`` are routed to their registered handler,
  regardless of which component is draining the loop;
* everything else goes to the ``handler`` passed to :meth:`run` (the
  gateway's arrival/done/crash/repair chain).  Unknown kinds with no
  handler are timers: they advance the clock and wake ``post_event``.

When the loop belongs to a :class:`~repro.cluster.runtime.Cluster`, the
``cluster.host_kill`` fault barrier runs before *every* event is
handled, so the crash-schedule explorer can kill a host at any point of
the event schedule.  With no fault plan installed the barrier is the
same single ``enabled`` flag test every other instrumented site pays —
zero behavioural cost, which is what keeps substrate runs byte-identical
to legacy runs.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults import plan as faultplan
from repro.simtime.clock import SimClock

#: ``handler(kind, payload)`` — the drain-side event chain.
EventHandler = Callable[[str, object], None]

#: ``handler(payload)`` — a loop-registered per-kind handler.
KindHandler = Callable[[object], None]


class EventLoop:
    """One deterministic event queue on a shared :class:`SimClock`."""

    def __init__(self, clock: SimClock, kill_barrier: bool = False) -> None:
        self.clock = clock
        #: Whether the ``cluster.host_kill`` fault barrier runs before
        #: each event (set by the owning cluster; plain loops skip it).
        self.kill_barrier = kill_barrier
        self._events: List[Tuple[float, int, str, object]] = []
        self._order = 0
        self._handlers: Dict[str, KindHandler] = {}

    # ------------------------------------------------------------------
    def push(self, at: float, kind: str, payload: object) -> None:
        """Schedule one event at sim time ``at`` (FIFO within a tick)."""
        heapq.heappush(self._events, (float(at), self._order, kind, payload))
        self._order += 1

    def register(self, kind: str, handler: KindHandler) -> None:
        """Route every popped ``kind`` event to ``handler`` directly."""
        self._handlers[kind] = handler

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._events)

    def _advance_to(self, t: float) -> None:
        now = self.clock.now()
        if t > now:
            self.clock.advance(t - now)

    # ------------------------------------------------------------------
    def run(
        self,
        handler: Optional[EventHandler] = None,
        post_event: Optional[Callable[[], None]] = None,
    ) -> None:
        """Drain the queue: advance, barrier, dispatch, wake.

        The clock only ever advances forward — an event whose time has
        already passed (a reload pushed global time past a pending
        completion) simply completes "late", exactly as the legacy
        gateway scheduler behaved.
        """
        while self._events:
            t, _, kind, payload = heapq.heappop(self._events)
            self._advance_to(t)
            if self.kill_barrier:
                active = faultplan.ACTIVE
                if active.enabled:
                    active.check("cluster.host_kill")
            registered = self._handlers.get(kind)
            if registered is not None:
                registered(payload)
            elif handler is not None:
                handler(kind, payload)
            if post_event is not None:
                post_event()
