"""One simulated machine: PM + SSD + enclaves + a crash/repair cycle.

A :class:`Host` owns the durable and volatile stacks one physical box
contributes to a deployment: an optional persistent-memory device (the
Romulus region + encrypted mirror live here), an optional SSD (sealed
key files), and the enclaves spawned on it.  Durable state survives
:meth:`power_fail`; enclaves do not — a reboot is a fresh enclave plus
Romulus recovery from this host's PM, which is exactly the paper's
single-machine crash model lifted to a named cluster member.

``open_region`` / ``format_region`` are the substrate's region attach
points.  Every substrate boot goes through them, which gives the
self-validation mutants one seam to break recovery at
(``host-reboot-skip-recovery`` in :mod:`repro.faults.mutations`) and the
``cluster.host_kill`` barrier a per-host owner.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults import plan as faultplan
from repro.hw.pmem import PersistentMemoryDevice
from repro.hw.ssd import BlockDevice
from repro.romulus.region import RomulusRegion
from repro.sgx.enclave import Enclave
from repro.simtime.clock import SimClock
from repro.simtime.profiles import ServerProfile


class Host:
    """A named cluster member owning its own hardware stacks."""

    def __init__(
        self,
        name: str,
        clock: SimClock,
        profile: ServerProfile,
        pm_size: Optional[int] = None,
        with_ssd: bool = False,
    ) -> None:
        self.name = name
        self.clock = clock
        self.profile = profile
        self.pm: Optional[PersistentMemoryDevice] = None
        if pm_size is not None:
            self.ensure_pm(pm_size)
        self.ssd: Optional[BlockDevice] = (
            BlockDevice(clock, profile.ssd) if with_ssd else None
        )
        self.alive = True
        self.boots = 0
        self._enclaves: List[Enclave] = []

    # ------------------------------------------------------------------
    # Hardware
    # ------------------------------------------------------------------
    def ensure_pm(self, pm_size: int) -> PersistentMemoryDevice:
        """The host's PM device, built on first use (size is sticky)."""
        if self.pm is None:
            self.pm = PersistentMemoryDevice(
                pm_size,
                self.clock,
                self.profile.pm,
                clflush_cost=self.profile.clflush_cost,
                clflushopt_cost=self.profile.clflushopt_cost,
                sfence_cost=self.profile.sfence_cost,
                store_cost=self.profile.store_cost,
                load_cost=self.profile.load_cost,
            )
        return self.pm

    def spawn_enclave(self) -> Enclave:
        """A fresh enclave on this host; dies with the host."""
        enclave = Enclave(self.clock, self.profile.sgx)
        self._enclaves.append(enclave)
        return enclave

    # ------------------------------------------------------------------
    # Region attach (the substrate's recovery entry points)
    # ------------------------------------------------------------------
    def open_region(self) -> RomulusRegion:
        """Attach to this host's region, running Romulus recovery."""
        if self.pm is None:
            raise RuntimeError(f"host {self.name!r} has no PM device")
        return RomulusRegion.open(self.pm)

    def format_region(self, main_size: int) -> RomulusRegion:
        """Format a fresh region on this host's PM."""
        if self.pm is None:
            raise RuntimeError(f"host {self.name!r} has no PM device")
        return RomulusRegion(self.pm, main_size).format()

    # ------------------------------------------------------------------
    # Crash / repair
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """``cluster.host_kill`` fault barrier (boot tops, step tops)."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("cluster.host_kill")

    def power_fail(self) -> None:
        """Fail-stop: enclaves die, volatile device tiers are lost."""
        self.alive = False
        for enclave in self._enclaves:
            if not enclave.destroyed:
                enclave.destroy()
        self._enclaves.clear()
        if self.pm is not None:
            self.pm.crash()
        if self.ssd is not None:
            self.ssd.crash()

    def boot(self) -> None:
        """Mark the host back up (callers then re-attach via the region
        entry points above and rebuild their volatile tier)."""
        self.alive = True
        self.boots += 1
