"""The cluster network: per-link latency/bandwidth, partition, heal.

Links are *directed* edges between named hosts, each with its own
latency and bandwidth (``connect`` creates both directions by default).
Partition and heal are first-class, deterministic operations — not
ad-hoc exception plumbing — and double as the ``cluster.partition`` /
``cluster.deliver`` fault coordinates the crash-schedule explorer
drives.

Two calling conventions cover the substrate's users:

* :meth:`transmit` — synchronous: pays the transit cost on the shared
  clock and hands the payload straight back.  This is the in-process
  calling convention of the legacy
  :class:`~repro.distributed.link.SecureLink`, kept bit-identical so the
  pipeline-worker differential tests hold.  A partition injected here
  holds the message and heals after a deterministic repair delay; an
  injected delivery drop raises
  :class:`~repro.faults.plan.InjectedLinkDrop` to the caller's
  reliable-transport retry loop.
* :meth:`send` — event-driven: schedules a ``cluster.deliver`` event on
  the owning :class:`~repro.cluster.loop.EventLoop`.  Per-link FIFO is
  enforced by a delivery horizon (a later message never overtakes an
  earlier one), partitioned links queue instead of delivering, and heal
  flushes the queue exactly once in FIFO order.  The Hypothesis suite
  (``tests/test_cluster_properties.py``) checks those properties over
  arbitrary schedules.

Control-plane edges (gateway -> replica dispatch, replica -> gateway
completion) use the zero-cost :meth:`barrier_send` /
:meth:`barrier_deliver` checks: they add fault coordinates without
perturbing the sim-time behaviour of fault-free runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.distributed.link import NIC_BANDWIDTH, NIC_LATENCY
from repro.faults import plan as faultplan
from repro.faults.plan import InjectedLinkDrop
from repro.simtime.clock import SimClock

#: Sim seconds a partition injected at ``cluster.partition`` lasts
#: before the substrate heals the link (synchronous transmits wait it
#: out; event-mode sends queue and flush at heal).
PARTITION_REPAIR_DELAY = 250e-6

#: Loop event kind carrying an in-flight message to its receiving NIC.
DELIVER_KIND = "cluster.deliver"

#: Loop event kind healing a partition the fault plan injected.
HEAL_KIND = "cluster.heal"

Deliver = Callable[[bytes], None]


@dataclass
class NetLink:
    """One directed edge and its volatile in-flight state."""

    src: str
    dst: str
    latency: float
    bandwidth: float
    partitioned: bool = False
    #: Delivery-time floor enforcing per-link FIFO ordering.
    fifo_horizon: float = 0.0
    #: Messages caught by a partition, waiting for heal (FIFO).
    held: List[Tuple[bytes, Deliver]] = field(default_factory=list)
    stats: Dict[str, int] = field(
        default_factory=lambda: {
            "messages": 0,
            "bytes": 0,
            "delivered": 0,
            "dropped": 0,
        }
    )

    def transit_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth

    def reset_volatile(self) -> None:
        """Forget in-flight state (host reboot: the wire is empty)."""
        self.partitioned = False
        self.fifo_horizon = 0.0
        self.held.clear()


class ClusterNetwork:
    """All links of one simulated deployment."""

    def __init__(self, clock: SimClock, loop=None) -> None:
        self.clock = clock
        self._links: Dict[Tuple[str, str], NetLink] = {}
        self.loop = None
        if loop is not None:
            self.rebind(loop)

    def rebind(self, loop) -> None:
        """Attach to a (fresh) event loop and clear in-flight state."""
        self.loop = loop
        loop.register(DELIVER_KIND, self._on_deliver)
        loop.register(HEAL_KIND, self._on_heal)
        for link in self._links.values():
            link.reset_volatile()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(
        self,
        a: str,
        b: str,
        latency: float = NIC_LATENCY,
        bandwidth: float = NIC_BANDWIDTH,
        duplex: bool = True,
    ) -> None:
        """Create the ``a -> b`` edge (and ``b -> a`` when duplex)."""
        self._links[(a, b)] = NetLink(a, b, latency, bandwidth)
        if duplex:
            self._links[(b, a)] = NetLink(b, a, latency, bandwidth)

    def connected(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def link(self, src: str, dst: str) -> NetLink:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(
                f"no link {src!r} -> {dst!r}; connected edges: "
                f"{sorted(self._links)}"
            ) from None

    # ------------------------------------------------------------------
    # Partition / heal (first-class deterministic fault operations)
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str, duplex: bool = True) -> None:
        """Cut the link(s): sends queue, in-flight messages are held."""
        self.link(a, b).partitioned = True
        if duplex and self.connected(b, a):
            self.link(b, a).partitioned = True

    def heal(self, a: str, b: str, duplex: bool = True) -> None:
        """Reconnect and flush every held message exactly once, FIFO."""
        self._heal_one(self.link(a, b))
        if duplex and self.connected(b, a):
            self._heal_one(self.link(b, a))

    def _heal_one(self, link: NetLink) -> None:
        link.partitioned = False
        held, link.held = link.held, []
        for payload, deliver in held:
            # Transit was already paid (or the message was at the NIC):
            # the flush delivers at the heal instant, FIFO order kept by
            # the horizon and by loop insertion order within one tick.
            at = max(self.clock.now(), link.fifo_horizon)
            link.fifo_horizon = at
            if self.loop is not None:
                self.loop.push(at, DELIVER_KIND, (link, payload, deliver))
            else:
                self._deliver(link, payload, deliver)

    # ------------------------------------------------------------------
    # Synchronous transfer (the legacy SecureLink calling convention)
    # ------------------------------------------------------------------
    def transmit(self, src: str, dst: str, payload: bytes) -> bytes:
        """Send + deliver in one step, advancing the shared clock.

        Fault-free this is exactly one ``clock.advance(latency +
        nbytes/bandwidth)`` — the same float expression the legacy
        link evaluates, which is what keeps substrate worker runs
        byte-identical to legacy runs.
        """
        link = self.link(src, dst)
        active = faultplan.ACTIVE
        if active.enabled:
            try:
                active.check("cluster.partition")
            except InjectedLinkDrop:
                # The link partitions under the message: it is held at
                # the sender NIC and goes out once the substrate heals
                # the link after the deterministic repair delay.
                self.partition(src, dst)
                self.clock.advance(PARTITION_REPAIR_DELAY)
                self.heal(src, dst)
        if link.partitioned:
            raise InjectedLinkDrop(
                f"link {src!r} -> {dst!r} is partitioned"
            )
        link.stats["messages"] += 1
        link.stats["bytes"] += len(payload)
        self.clock.advance(link.transit_time(len(payload)))
        if active.enabled:
            try:
                active.check("cluster.deliver")
            except InjectedLinkDrop:
                link.stats["dropped"] += 1
                raise
        link.stats["delivered"] += 1
        return payload

    # ------------------------------------------------------------------
    # Event-driven transfer (schedules onto the owning loop)
    # ------------------------------------------------------------------
    def send(
        self, src: str, dst: str, payload: bytes, deliver: Deliver
    ) -> None:
        """Queue ``payload`` for delivery; ``deliver`` runs at arrival."""
        if self.loop is None:
            raise RuntimeError(
                "event-driven send needs the network bound to an "
                "EventLoop (use transmit for synchronous transfers)"
            )
        link = self.link(src, dst)
        active = faultplan.ACTIVE
        if active.enabled:
            try:
                active.check("cluster.partition")
            except InjectedLinkDrop:
                self.partition(src, dst)
                self.loop.push(
                    self.clock.now() + PARTITION_REPAIR_DELAY,
                    HEAL_KIND,
                    (src, dst),
                )
        link.stats["messages"] += 1
        link.stats["bytes"] += len(payload)
        arrival = max(
            self.clock.now() + link.transit_time(len(payload)),
            link.fifo_horizon,
        )
        link.fifo_horizon = arrival
        if link.partitioned:
            link.held.append((payload, deliver))
            return
        self.loop.push(arrival, DELIVER_KIND, (link, payload, deliver))

    def _on_heal(self, event: object) -> None:
        a, b = event  # type: ignore[misc]
        self.heal(a, b)

    def _on_deliver(self, event: object) -> None:
        link, payload, deliver = event  # type: ignore[misc]
        if link.partitioned:
            # The partition raced the in-flight message: it is caught
            # at the receiving NIC and queued until heal.
            link.held.append((payload, deliver))
            return
        self._deliver(link, payload, deliver)

    def _deliver(self, link: NetLink, payload: bytes, deliver: Deliver) -> None:
        active = faultplan.ACTIVE
        if active.enabled:
            try:
                active.check("cluster.deliver")
            except InjectedLinkDrop:
                # The message is lost at the NIC.  Loss recovery is an
                # endpoint concern (reliable transport / redispatch);
                # the wire just counts it.
                link.stats["dropped"] += 1
                return
        link.stats["delivered"] += 1
        deliver(payload)

    # ------------------------------------------------------------------
    # Control-plane fault barriers (no payload, no sim-time cost)
    # ------------------------------------------------------------------
    def barrier_send(self, src: str, dst: str) -> None:
        """``cluster.partition`` coordinate on the ``src -> dst`` edge."""
        active = faultplan.ACTIVE
        if active.enabled:
            self.link(src, dst)  # the edge must exist to be cut
            active.check("cluster.partition")

    def barrier_deliver(self, src: str, dst: str) -> None:
        """``cluster.deliver`` coordinate on the ``src -> dst`` edge."""
        active = faultplan.ACTIVE
        if active.enabled:
            self.link(src, dst)
            active.check("cluster.deliver")
