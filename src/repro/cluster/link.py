"""A secure inter-enclave link whose wire is a cluster network edge.

:class:`ClusterLink` keeps the legacy
:class:`~repro.distributed.link.SecureLink` crypto framing, fault sites
(``link.send`` / ``link.recv``), and stats byte-for-byte, but routes the
transit through :meth:`~repro.cluster.network.ClusterNetwork.transmit`:
the edge's latency/bandwidth pay the cost on the shared clock, and the
``cluster.partition`` / ``cluster.deliver`` fault coordinates apply on
top of the legacy link sites.  Fault-free, a transfer over a
default-parameter edge is bit-identical to the legacy link — the
differential tests depend on it.
"""

from __future__ import annotations

from repro.cluster.network import ClusterNetwork
from repro.crypto.engine import EncryptionEngine
from repro.distributed.link import SecureLink


class ClusterLink(SecureLink):
    """A sealed channel between two named hosts of a cluster."""

    def __init__(
        self,
        engine: EncryptionEngine,
        network: ClusterNetwork,
        src: str,
        dst: str,
    ) -> None:
        edge = network.link(src, dst)
        super().__init__(
            engine,
            network.clock,
            bandwidth=edge.bandwidth,
            latency=edge.latency,
        )
        self.network = network
        self.src = src
        self.dst = dst

    def _transit(self, sealed: bytes) -> None:
        self.network.transmit(self.src, self.dst, sealed)
