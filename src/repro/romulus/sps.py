"""SPS — the swaps-per-second PM-library benchmark (paper Fig. 6).

SPS "stores an array of integers in PM and evaluates the overhead of
randomly swapping array values within a transaction, for different
persistence fences and transaction sizes" on a 10 MB persistent array,
single-threaded.  The paper sweeps transaction sizes 1..2048 swaps for
three hosting runtimes (native, Romulus-in-SCONE, SGX-Romulus) and two
PWB combinations (CLFLUSH + NOP, CLFLUSHOPT + SFENCE).

The swaps run for real through :class:`Transaction` on a simulated PM
device whose micro-costs are scaled by the runtime profile; throughput
is total swaps divided by elapsed *simulated* time.  Determinism makes a
bounded number of transactions sufficient for an exact estimate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hw.pmem import FlushInstruction, PersistentMemoryDevice
from repro.romulus.alloc import PersistentHeap
from repro.romulus.region import HEADER_SIZE, RomulusRegion
from repro.romulus.runtime import RuntimeProfile
from repro.simtime.clock import SimClock
from repro.simtime.profiles import ServerProfile

_INT_SIZE = 8


@dataclass(frozen=True)
class SpsConfig:
    """Parameters of one SPS run."""

    array_bytes: int = 10 * 1024 * 1024  # the paper's 10 MB array
    tx_size: int = 64  # swaps per transaction
    target_swaps: int = 4096  # enough transactions for a stable estimate
    flush_instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT
    seed: int = 42


@dataclass(frozen=True)
class SpsResult:
    """Outcome of one SPS run."""

    runtime: str
    tx_size: int
    flush_instruction: str
    swaps: int
    transactions: int
    sim_seconds: float

    @property
    def swaps_per_second(self) -> float:
        """The Fig. 6 metric."""
        return self.swaps / self.sim_seconds


def _scaled_device(
    profile: ServerProfile, runtime: RuntimeProfile, size: int, clock: SimClock
) -> PersistentMemoryDevice:
    """A PM device whose micro-costs reflect the hosting runtime.

    Flush and fence instructions inside an enclave run 1.6-3.7x slower
    than native (the paper's measurement for SGX-Romulus); loads/stores
    on enclave-resident data pay the MEE tax.
    """
    return PersistentMemoryDevice(
        size,
        clock,
        profile.pm,
        clflush_cost=profile.clflush_cost * runtime.fence_multiplier,
        clflushopt_cost=profile.clflushopt_cost * runtime.fence_multiplier,
        sfence_cost=profile.sfence_cost,
        store_cost=profile.store_cost * runtime.memory_multiplier,
        load_cost=profile.load_cost * runtime.memory_multiplier,
    )


def run_sps(
    profile: ServerProfile,
    runtime: RuntimeProfile,
    config: SpsConfig = SpsConfig(),
) -> SpsResult:
    """Run SPS under ``runtime`` on ``profile``'s PM; returns throughput."""
    if config.tx_size < 1:
        raise ValueError(f"tx_size must be >= 1, got {config.tx_size}")
    clock = SimClock()
    device_size = HEADER_SIZE + 2 * (config.array_bytes + 4096)
    device = _scaled_device(profile, runtime, device_size, clock)
    region = RomulusRegion(
        device,
        config.array_bytes + 4096,
        flush_instruction=config.flush_instruction,
        runtime=runtime,
    ).format()
    heap = PersistentHeap(region)

    n_ints = config.array_bytes // _INT_SIZE
    with region.begin_transaction() as tx:
        array = heap.pmalloc(tx, config.array_bytes)
        # Initialize a recognizable pattern in bulk (identity permutation).
        init = b"".join(
            i.to_bytes(_INT_SIZE, "little") for i in range(min(n_ints, 4096))
        )
        for chunk_start in range(0, config.array_bytes, len(init)):
            chunk = init[: min(len(init), config.array_bytes - chunk_start)]
            tx.write(array + chunk_start, chunk)

    rng = random.Random(config.seed)
    n_tx = max(8, -(-config.target_swaps // config.tx_size))
    start = clock.now()
    swaps = 0
    for _ in range(n_tx):
        with region.begin_transaction() as tx:
            for _ in range(config.tx_size):
                i = rng.randrange(n_ints)
                j = rng.randrange(n_ints)
                a = tx.read(array + i * _INT_SIZE, _INT_SIZE)
                b = tx.read(array + j * _INT_SIZE, _INT_SIZE)
                tx.write(array + i * _INT_SIZE, b)
                tx.write(array + j * _INT_SIZE, a)
                swaps += 1
    elapsed = clock.now() - start
    return SpsResult(
        runtime=runtime.name,
        tx_size=config.tx_size,
        flush_instruction=config.flush_instruction.value,
        swaps=swaps,
        transactions=n_tx,
        sim_seconds=elapsed,
    )
