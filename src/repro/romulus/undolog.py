"""Undo-log durable transactions — the ablation baseline for Romulus.

Romulus' pitch (Section II) is "at most four persistence fences for
atomic updates on data structures, regardless of transaction size" and
"low write amplification relative to other PM libraries".  To make that
design choice measurable, this module implements the classic alternative
— a **persistent undo log** — over the same simulated PM device:

* before each in-place store, the *old* value is appended to a log in
  PM, flushed, and **fenced** (the undo record must be durable before
  the data write can be) — one fence per store;
* commit truncates the log (persist the empty log head, one more fence);
* recovery applies un-truncated undo records in reverse.

Per transaction of N stores the undo log pays N+1 fences and writes each
modified byte to the media *twice* plus log headers — strictly worse
than Romulus' 4 fences and main+back double-write for multi-store
transactions, which is exactly what ``benchmarks/bench_ablation_pm_log.py``
quantifies.
"""

from __future__ import annotations

import struct
from types import TracebackType
from typing import Optional, Type

from repro.hw.pmem import FlushInstruction, PersistentMemoryDevice

MAGIC = b"UNDOLOG1"
_HEADER_SIZE = 4096
_RECORD_HEADER = struct.Struct("<QQ")  # offset, length


class UndoLogRegion:
    """A persistent region guarded by an undo log.

    Layout::

        base + 0     magic (8) | log_used (8) | data_size (8) | log_size (8)
        base + 4096  log area   (log_size bytes)
        base + 4096 + log_size  data area (data_size bytes)

    Offsets in the public API are data-area-relative, matching
    :class:`~repro.romulus.region.RomulusRegion`'s convention.
    """

    def __init__(
        self,
        device: PersistentMemoryDevice,
        data_size: int,
        log_size: int = 1 << 20,
        base: int = 0,
        flush_instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT,
    ) -> None:
        needed = base + _HEADER_SIZE + log_size + data_size
        if needed > device.size:
            raise ValueError(
                f"device too small: undo-log region needs {needed} bytes"
            )
        self.device = device
        self.base = base
        self.data_size = data_size
        self.log_size = log_size
        self.flush_instruction = flush_instruction
        self.log_base = base + _HEADER_SIZE
        self.data_base = self.log_base + log_size
        self.active_transaction = False

    # ------------------------------------------------------------------
    def _read_u64(self, offset: int) -> int:
        return struct.unpack("<Q", self.device.read(self.base + offset, 8))[0]

    def _persist_u64(self, offset: int, value: int, fence: bool = True) -> None:
        self.device.write(self.base + offset, struct.pack("<Q", value))
        self.device.flush(self.base + offset, 8, self.flush_instruction)
        if fence and self.flush_instruction.needs_fence:
            self.device.fence()

    @property
    def log_used(self) -> int:
        return self._read_u64(8)

    def format(self) -> "UndoLogRegion":
        """Initialize an empty region."""
        self.device.write(self.base, MAGIC)
        header = struct.pack("<QQQ", 0, self.data_size, self.log_size)
        self.device.write(self.base + 8, header)
        self.device.persist(self.base, 32, self.flush_instruction)
        return self

    @classmethod
    def open(
        cls,
        device: PersistentMemoryDevice,
        base: int = 0,
        flush_instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT,
    ) -> "UndoLogRegion":
        """Attach to an existing region, rolling back a torn transaction."""
        if device.read(base, 8) != MAGIC:
            raise ValueError(f"no undo-log region at base {base}")
        _, data_size, log_size = struct.unpack(
            "<QQQ", device.read(base + 8, 24)
        )
        region = cls(
            device,
            data_size,
            log_size=log_size,
            base=base,
            flush_instruction=flush_instruction,
        )
        region.recover()
        return region

    def recover(self) -> int:
        """Apply pending undo records (newest first); returns the count."""
        used = self.log_used
        # Collect records in order, then undo in reverse.
        records = []
        cursor = 0
        while cursor < used:
            offset, length = _RECORD_HEADER.unpack(
                self.device.read(self.log_base + cursor, _RECORD_HEADER.size)
            )
            cursor += _RECORD_HEADER.size
            old = self.device.read(self.log_base + cursor, length)
            cursor += length
            records.append((offset, old))
        for offset, old in reversed(records):
            self.device.write(self.data_base + offset, old)
            self.device.flush(
                self.data_base + offset, len(old), self.flush_instruction
            )
        if records and self.flush_instruction.needs_fence:
            self.device.fence()
        self._persist_u64(8, 0)
        self.active_transaction = False
        return len(records)

    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read from the data area."""
        if offset < 0 or offset + length > self.data_size:
            raise IndexError(
                f"undo-log access [{offset}, {offset + length}) outside "
                f"data area of {self.data_size} bytes"
            )
        return self.device.read(self.data_base + offset, length)

    def begin_transaction(self) -> "UndoTransaction":
        """Start a durable transaction."""
        return UndoTransaction(self)


class UndoTransaction:
    """A single undo-logged transaction (context-manager friendly)."""

    def __init__(self, region: UndoLogRegion) -> None:
        if region.active_transaction:
            raise RuntimeError("undo-log transactions cannot nest")
        self.region = region
        self._open = True
        self._log_cursor = region.log_used
        region.active_transaction = True

    def write(self, offset: int, data: bytes) -> None:
        """Undo-log the old value (durably), then store in place."""
        if not self._open:
            raise RuntimeError("transaction already closed")
        region = self.region
        device = region.device
        instr = region.flush_instruction
        if offset < 0 or offset + len(data) > region.data_size:
            raise IndexError(f"write outside data area at {offset}")
        if not data:
            return
        record = _RECORD_HEADER.pack(offset, len(data)) + region.read(
            offset, len(data)
        )
        if self._log_cursor + len(record) > region.log_size:
            raise RuntimeError("undo log full — transaction too large")
        device.write(region.log_base + self._log_cursor, record)
        device.flush(
            region.log_base + self._log_cursor, len(record), instr
        )
        self._log_cursor += len(record)
        # Publish the new log length; both must be durable *before* the
        # in-place store — hence a fence per write.
        region._persist_u64(8, self._log_cursor)
        device.write(region.data_base + offset, data)
        device.flush(region.data_base + offset, len(data), instr)

    def read(self, offset: int, length: int) -> bytes:
        """Read through the transaction (in-place updates are visible)."""
        return self.region.read(offset, length)

    def commit(self) -> None:
        """Order the data flushes, then truncate the log."""
        if not self._open:
            raise RuntimeError("transaction already closed")
        region = self.region
        if region.flush_instruction.needs_fence:
            region.device.fence()
        region._persist_u64(8, 0)
        self._close()

    def abort(self) -> None:
        """Roll back via the undo records written so far."""
        if not self._open:
            raise RuntimeError("transaction already closed")
        self.region.recover()
        self._close()

    def _close(self) -> None:
        self._open = False
        self.region.active_transaction = False

    def __enter__(self) -> "UndoTransaction":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if not self._open:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()
