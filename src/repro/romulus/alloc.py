"""Persistent memory allocator (the ``PMalloc`` of Algorithm 3).

A first-fit free-list allocator whose metadata lives *inside the main
region* (bump pointer and free-list head at main offsets 0 and 8, free
blocks threaded through the freed memory itself).  Because all metadata
writes go through the transaction, a crash mid-allocation rolls the
allocator state back together with the data it was allocating for —
no persistent leaks, no dangling blocks.

Block layout: each allocation is preceded by an 8-byte size header.
Free blocks reuse their first 16 bytes as ``(next, size)``.
"""

from __future__ import annotations

from typing import Optional

from repro.romulus.region import USER_DATA_START, RomulusRegion
from repro.romulus.transaction import Transaction

_BUMP_OFFSET = 0
_FREE_HEAD_OFFSET = 8
_HEADER = 8  # size header preceding every block
_ALIGN = 64  # cache-line alignment, matching persist<> granularity
_MIN_BLOCK = 64


class AllocationError(MemoryError):
    """Raised when the main region cannot satisfy an allocation."""


def _align(n: int) -> int:
    return -(-n // _ALIGN) * _ALIGN


class PersistentHeap:
    """Allocator facade over a region; all mutations require a transaction."""

    def __init__(self, region: RomulusRegion) -> None:
        self.region = region

    # ------------------------------------------------------------------
    @property
    def bump(self) -> int:
        """Current bump pointer (main-relative)."""
        return self.region.read_u64(_BUMP_OFFSET)

    @property
    def free_head(self) -> int:
        """Offset of the first free-list block (0 = empty list)."""
        return self.region.read_u64(_FREE_HEAD_OFFSET)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed from the user area (including size headers)."""
        return self.bump - USER_DATA_START

    def pmalloc(self, tx: Transaction, size: int) -> int:
        """Allocate ``size`` bytes; returns the main-relative offset.

        First fit over the free list, falling back to the bump pointer.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        need = max(_align(size + _HEADER), _MIN_BLOCK)

        taken = self._take_from_free_list(tx, need)
        if taken is None:
            offset = self._take_from_bump(tx, need)
            if offset is None:
                raise AllocationError(
                    f"persistent heap exhausted: need {need} bytes, "
                    f"bump at {self.bump} of {self.region.main_size}"
                )
            granted = need
        else:
            offset, granted = taken
        tx.write_u64(offset, granted)
        return offset + _HEADER

    def pmfree(self, tx: Transaction, user_offset: int) -> None:
        """Return a block to the free list."""
        block = user_offset - _HEADER
        size = self.region.read_u64(block)
        if size < _MIN_BLOCK or block + size > self.region.main_size:
            raise ValueError(
                f"pmfree of offset {user_offset}: corrupt size header {size}"
            )
        # Thread onto the list head: block stores (next, size).
        tx.write_u64(block, self.free_head)
        tx.write_u64(block + 8, size)
        tx.write_u64(_FREE_HEAD_OFFSET, block)

    def allocation_size(self, user_offset: int) -> int:
        """Usable bytes of the allocation at ``user_offset``."""
        return self.region.read_u64(user_offset - _HEADER) - _HEADER

    # ------------------------------------------------------------------
    def _take_from_free_list(
        self, tx: Transaction, need: int
    ) -> Optional[tuple]:
        """First fit; returns ``(offset, granted_size)`` or None."""
        prev = _FREE_HEAD_OFFSET
        current = self.free_head
        while current != 0:
            nxt = self.region.read_u64(current)
            size = self.region.read_u64(current + 8)
            if size >= need:
                remainder = size - need
                if remainder >= _MIN_BLOCK:
                    # Split: the tail stays on the free list.
                    tail = current + need
                    tx.write_u64(tail, nxt)
                    tx.write_u64(tail + 8, remainder)
                    tx.write_u64(prev, tail)
                    return current, need
                # Hand out the whole block (remainder too small to keep).
                tx.write_u64(prev, nxt)
                return current, size
            prev = current
            current = nxt
        return None

    def _take_from_bump(self, tx: Transaction, need: int) -> Optional[int]:
        bump = self.bump
        if bump + need > self.region.main_size:
            return None
        tx.write_u64(_BUMP_OFFSET, bump + need)
        return bump
