"""Durable Romulus transactions — at most four persistence fences.

Fence budget per transaction (CLFLUSHOPT + SFENCE mode):

1. **begin** — persist ``state = MUTATING``.  Must be durable before any
   main modification becomes durable, otherwise recovery would trust a
   half-mutated main.
2. **commit, step A** — one fence ordering all the per-store interposed
   flushes of main (the ``persist<>`` wrapper flushed each store
   eagerly; only the ordering point is paid here).
3. **commit, step B** — persist ``state = COPYING`` (flush + the fence
   counted here), then copy every logged range from main to back with
   interposed flushes, then one fence ordering those flushes (fence 4).
4. **commit, step C** — write ``state = IDLE`` and flush it *without* a
   fence: if the IDLE store is not yet durable at a crash, recovery
   finds COPYING and harmlessly re-copies a consistent main over back.
   The next transaction's begin-fence orders it.

In CLFLUSH + NOP mode the flush instruction is itself ordered, so every
fence degenerates to a NOP — the second persistence-combination the
paper evaluates in Fig. 6.

Aborts restore the logged ranges of main from back and return to IDLE.
"""

from __future__ import annotations

from types import TracebackType
from typing import Optional, Type

from repro.faults import plan as faultplan
from repro.romulus.log import VolatileLog
from repro.romulus.region import RegionState, RomulusRegion


class TransactionError(RuntimeError):
    """Raised on misuse (nested transactions, writes outside one, ...)."""


class Transaction:
    """A single durable transaction over a :class:`RomulusRegion`.

    Usable as a context manager: commits on clean exit, aborts if the
    body raised.
    """

    def __init__(self, region: RomulusRegion) -> None:
        if region.active_transaction:
            raise TransactionError("Romulus transactions cannot nest")
        self.region = region
        self.log = VolatileLog()
        self._open = True
        region.active_transaction = True
        region.device.clock.advance(region.runtime.per_tx_overhead)
        # Fence 1: MUTATING must be durable before mutations are.
        region.set_state(RegionState.MUTATING)

    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Interposed store: write main, flush the lines, log the range."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("romulus.tx.write")
        self._check_open()
        self.region._check_offset(offset, len(data))
        if not data:
            return
        device = self.region.device
        device.write(self.region.main_base + offset, data)
        # persist<> interposition: eager flush, no fence.
        device.flush(
            self.region.main_base + offset,
            len(data),
            self.region.flush_instruction,
        )
        self._charge_memory_overhead(len(data))
        self.log.record(offset, len(data))
        self._charge_log_spill()

    def write_prefilled(self, offset: int, length: int) -> None:
        """Interposed store whose payload was already staged in place.

        The zero-copy sealing pipeline writes ciphertext directly into
        the main twin through ``region.staging_view`` (volatile, costless
        until here); this performs the identical accounting, flush and
        logging that :meth:`write` would — only the memcpy is skipped.
        """
        self._check_open()
        self.region._check_offset(offset, length)
        if not length:
            return
        device = self.region.device
        device.write_prefilled(self.region.main_base + offset, length)
        device.flush(
            self.region.main_base + offset,
            length,
            self.region.flush_instruction,
        )
        self._charge_memory_overhead(length)
        self.log.record(offset, length)
        self._charge_log_spill()

    def write_u64(self, offset: int, value: int) -> None:
        """Interposed store of a little-endian u64."""
        self.write(offset, value.to_bytes(8, "little"))

    def read(self, offset: int, length: int) -> bytes:
        """Read through the transaction (main holds in-place updates)."""
        self._check_open()
        return self.region.read(offset, length)

    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Make the transaction durable (fences 2-4 of the protocol)."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("romulus.tx.commit")
        self._check_open()
        region = self.region
        device = region.device
        instr = region.flush_instruction

        # Fence 2: order all interposed flushes of main.
        if instr.needs_fence:
            region.fence()
        # Fence 3: main is durable and consistent -> advertise COPYING.
        region.set_state(RegionState.COPYING)
        # Copy modified ranges main -> back, with interposed flushes.
        for start, end in self.log.ranges():
            device.copy_within(
                region.main_base + start, region.back_base + start, end - start
            )
            device.flush(region.back_base + start, end - start, instr)
            self._charge_memory_overhead(end - start)
        # Fence 4: order the back flushes before IDLE can become durable.
        if instr.needs_fence:
            region.fence()
        if active.enabled:
            active.check("romulus.tx.commit.pre_idle")
        # IDLE flushed but unfenced: crash here recovers as COPYING,
        # which re-copies a consistent main — safe and idempotent.
        region.set_state(RegionState.IDLE, fence=False)
        device.clock.recorder.count("romulus.commits")
        self._close()

    def abort(self) -> None:
        """Roll main back from the back twin for every logged range."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("romulus.tx.abort")
        self._check_open()
        region = self.region
        device = region.device
        instr = region.flush_instruction
        for start, end in self.log.ranges():
            device.copy_within(
                region.back_base + start, region.main_base + start, end - start
            )
            device.flush(region.main_base + start, end - start, instr)
        if instr.needs_fence:
            region.fence()
        region.set_state(RegionState.IDLE)
        device.clock.recorder.count("romulus.aborts")
        self._close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if not self._open:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if not self._open:
            raise TransactionError("transaction already committed or aborted")

    def _close(self) -> None:
        self._open = False
        self.region.active_transaction = False
        self.log.clear()

    def _charge_memory_overhead(self, nbytes: int) -> None:
        runtime = self.region.runtime
        extra = runtime.memory_multiplier - 1.0
        if extra > 0:
            device = self.region.device
            device.clock.advance(extra * nbytes / device.cost.write_bandwidth)

    def _charge_log_spill(self) -> None:
        runtime = self.region.runtime
        if (
            runtime.log_capacity is not None
            and self.log.entries > runtime.log_capacity
        ):
            self.region.device.clock.advance(runtime.log_spill_cost)
