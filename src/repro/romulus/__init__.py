"""SGX-Romulus: durable transactions on persistent memory.

A from-scratch port of the Romulus PM library [Correia, Felber,
Ramalhete — SPAA'18] as described in Sections II and IV of the Plinius
paper:

* twin copies of the data in PM — *main* (where user code performs
  in-place modifications) and *back* (a snapshot of the last consistent
  state);
* a *volatile* log of the address ranges modified by the current
  transaction (kept in enclave DRAM — its loss on crash is harmless by
  design);
* at most **four persistence fences** per transaction, regardless of
  transaction size;
* store interposition (the ``persist<>`` wrapper) ensuring every store
  to persistent data is followed by a persistent write-back;
* crash recovery that restores *main* from *back* after a crash while
  mutating, or re-executes the copy to *back* after a crash while
  copying.

The runtime profiles in :mod:`repro.romulus.runtime` reproduce the three
systems compared in Fig. 6: native (no SGX), Romulus inside a SCONE
container, and SGX-Romulus on the SGX SDK.
"""

from repro.romulus.runtime import (
    NATIVE,
    SCONE,
    SGX_SDK,
    RuntimeProfile,
    get_runtime,
)
from repro.romulus.region import RegionState, RomulusRegion
from repro.romulus.log import VolatileLog
from repro.romulus.transaction import Transaction, TransactionError
from repro.romulus.alloc import AllocationError, PersistentHeap
from repro.romulus.sps import SpsConfig, SpsResult, run_sps

__all__ = [
    "RuntimeProfile",
    "NATIVE",
    "SCONE",
    "SGX_SDK",
    "get_runtime",
    "RomulusRegion",
    "RegionState",
    "VolatileLog",
    "Transaction",
    "TransactionError",
    "PersistentHeap",
    "AllocationError",
    "SpsConfig",
    "SpsResult",
    "run_sps",
]
