"""Romulus' volatile log of modified ranges.

The log records the address ranges mutated by the in-flight transaction.
It lives in *volatile* (enclave) memory — Romulus' central insight is
that this log never needs to survive a crash: if the crash happens while
mutating, *back* is consistent and *main* is rebuilt from it wholesale,
so knowing which ranges were dirty is unnecessary.

The log coalesces adjacent ranges (via :class:`IntervalSet`) so that the
commit-time copy of main to back is proportional to the modified bytes,
and it reports the raw entry count so runtime profiles with bounded log
space (SCONE in Fig. 6) can charge spill costs.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.faults import plan as faultplan
from repro.hw.intervals import IntervalSet


class VolatileLog:
    """Coalescing range log with an append counter."""

    def __init__(self) -> None:
        self._ranges = IntervalSet()
        self.entries = 0

    def record(self, offset: int, length: int) -> None:
        """Log a store to ``[offset, offset + length)``."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("romulus.log.record")
        if length <= 0:
            return
        self._ranges.add(offset, offset + length)
        self.entries += 1

    def clear(self) -> None:
        """Empty the log (transaction committed or aborted)."""
        self._ranges.clear()
        self.entries = 0

    def ranges(self) -> Iterator[Tuple[int, int]]:
        """Iterate coalesced ``(start, end)`` ranges."""
        return iter(self._ranges)

    @property
    def modified_bytes(self) -> int:
        """Total distinct bytes modified by the transaction."""
        return self._ranges.total

    def __len__(self) -> int:
        return len(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)
