"""Execution-runtime profiles for the Fig. 6 comparison.

The paper benchmarks the same Romulus algorithm hosted three ways:

* **native** — no SGX at all; the performance baseline.
* **SCONE** — unmodified Romulus inside a SCONE container.  Competitive
  for small transactions, but the container's constrained memory leaves
  "limited space available for Romulus' volatile redo log": beyond ~64
  swaps per transaction the log spills and throughput collapses
  (the pronounced drop the paper reports).
* **SGX-SDK** (SGX-Romulus) — the manual port.  Persistence fences and
  flushes run ~1.6-3.7x slower than native inside the enclave, but the
  log lives in regular enclave memory and scales with transaction size.

A profile scales the PM micro-operation costs and adds log-capacity
behaviour; :func:`repro.romulus.sps.run_sps` instantiates devices and
regions from one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RuntimeProfile:
    """How a hosting runtime scales Romulus' cost profile."""

    name: str
    #: Multiplier on store/load costs (MEE tax on enclave-resident data).
    memory_multiplier: float
    #: Multiplier on flush/fence costs (the paper measures 1.6-3.7x for
    #: SGX-Romulus vs. native).
    fence_multiplier: float
    #: Fixed cost added to every transaction (runtime bookkeeping).
    per_tx_overhead: float
    #: Volatile-log entries before the runtime must spill (None: unbounded).
    log_capacity: Optional[int] = None
    #: Cost per log entry beyond capacity (SCONE's collapse in Fig. 6).
    log_spill_cost: float = 0.0


NATIVE = RuntimeProfile(
    name="native",
    memory_multiplier=1.0,
    fence_multiplier=1.0,
    per_tx_overhead=40e-9,
)

SCONE = RuntimeProfile(
    name="scone",
    memory_multiplier=1.15,
    fence_multiplier=1.4,
    per_tx_overhead=80e-9,
    # The log records one entry per interposed store; SPS issues two
    # stores per swap, so capacity 128 collapses beyond 64 swaps/tx —
    # the drop the paper observes.
    log_capacity=128,
    log_spill_cost=0.35e-6,
)

SGX_SDK = RuntimeProfile(
    name="sgx-romulus",
    memory_multiplier=1.35,
    fence_multiplier=2.6,
    per_tx_overhead=120e-9,
)

_RUNTIMES = {r.name: r for r in (NATIVE, SCONE, SGX_SDK)}


def get_runtime(name: str) -> RuntimeProfile:
    """Look up a runtime profile by name."""
    try:
        return _RUNTIMES[name]
    except KeyError:
        known = ", ".join(sorted(_RUNTIMES))
        raise KeyError(f"unknown runtime {name!r}; known: {known}") from None
