"""The Romulus persistent region: header + twin *main*/*back* copies.

On-device layout (all sizes in bytes)::

    base + 0      magic        8   b"ROMULUS1"
    base + 8      state        8   0=IDLE  1=MUTATING  2=COPYING
    base + 16     main_size    8
    base + 4096   main region  main_size   (user code reads/writes here)
    base + 4096 + main_size    back region main_size  (consistent snapshot)

Inside *main*, the first bytes are the allocator metadata and the root
directory; because they live in main they are covered by the same
twin-copy protocol as user data (a crash mid-allocation rolls the
allocator back together with the data)::

    main + 0      alloc bump pointer   8
    main + 8      free-list head       8   (0 = empty)
    main + 16     roots                8 x 8
    main + 80     user data

Recovery (Section II): after a crash while **mutating**, back is the
consistent copy — restore main from back; after a crash while
**copying**, main is consistent — redo the copy to back.  The volatile
log is lost in both cases and never needed.
"""

from __future__ import annotations

import enum
import struct

from repro.hw.pmem import FlushInstruction, PersistentMemoryDevice
from repro.romulus.runtime import NATIVE, RuntimeProfile

MAGIC = b"ROMULUS1"
HEADER_SIZE = 4096

_META_BUMP = 0
_META_FREE_HEAD = 8
_META_ROOTS = 16
NUM_ROOTS = 8
USER_DATA_START = _META_ROOTS + 8 * NUM_ROOTS


class RegionState(enum.IntEnum):
    """Consistency state recorded in the persistent header."""

    IDLE = 0
    MUTATING = 1
    COPYING = 2


class RomulusRegion:
    """A formatted Romulus region on a PM device.

    Use :meth:`format` on first use and :meth:`open` (which runs
    recovery) on every subsequent attach.  User-facing offsets are
    *main-relative*; allocation offsets returned by the heap point into
    the user-data area.
    """

    def __init__(
        self,
        device: PersistentMemoryDevice,
        main_size: int,
        base: int = 0,
        flush_instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT,
        runtime: RuntimeProfile = NATIVE,
    ) -> None:
        needed = base + HEADER_SIZE + 2 * main_size
        if needed > device.size:
            raise ValueError(
                f"device too small: region needs {needed} bytes, "
                f"device has {device.size}"
            )
        if main_size <= USER_DATA_START:
            raise ValueError(f"main_size must exceed {USER_DATA_START} bytes")
        self.device = device
        self.base = base
        self.main_size = main_size
        self.flush_instruction = flush_instruction
        self.runtime = runtime
        self.main_base = base + HEADER_SIZE
        self.back_base = self.main_base + main_size
        self.active_transaction = False

    # ------------------------------------------------------------------
    # Header access
    # ------------------------------------------------------------------
    def _read_header_u64(self, offset: int) -> int:
        return struct.unpack(
            "<Q", self.device.read(self.base + offset, 8)
        )[0]

    def _write_header_u64(self, offset: int, value: int) -> None:
        self.device.write(self.base + offset, struct.pack("<Q", value))

    @property
    def state(self) -> RegionState:
        """Current persistent consistency state."""
        return RegionState(self._read_header_u64(8))

    def set_state(self, state: RegionState, fence: bool = True) -> None:
        """Persist a state transition (flush + optional fence)."""
        self._write_header_u64(8, int(state))
        self.device.flush(self.base + 8, 8, self.flush_instruction)
        if fence and self.flush_instruction.needs_fence:
            self.fence()

    def fence(self) -> None:
        """Issue a persistence fence, scaled by the hosting runtime."""
        self.device.fence()
        extra = (self.runtime.fence_multiplier - 1.0) * self.device.sfence_cost
        if extra > 0:
            self.device.clock.advance(extra)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def format(self) -> "RomulusRegion":
        """Initialize a fresh region: both twins consistent and empty."""
        self.device.write(self.base, MAGIC)
        self._write_header_u64(8, int(RegionState.IDLE))
        self._write_header_u64(16, self.main_size)
        # Allocator metadata + empty root directory.
        meta = struct.pack("<QQ", USER_DATA_START, 0) + b"\x00" * (8 * NUM_ROOTS)
        self.device.write(self.main_base, meta)
        # Twin snapshot.
        self.device.write(
            self.back_base, self.device.read(self.main_base, len(meta))
        )
        # Persist the twins first and the magic-bearing header last: once
        # the magic is durable, everything it promises (state, main_size,
        # allocator meta, twin snapshot) is durable too.  A crash
        # mid-format therefore leaves either no region (reformat on next
        # boot) or a complete one — never a magic pointing at garbage.
        self.device.flush(self.main_base, len(meta), self.flush_instruction)
        self.device.flush(self.back_base, len(meta), self.flush_instruction)
        if self.flush_instruction.needs_fence:
            self.fence()
        self.device.flush(self.base, HEADER_SIZE, self.flush_instruction)
        if self.flush_instruction.needs_fence:
            self.fence()
        return self

    @classmethod
    def open(
        cls,
        device: PersistentMemoryDevice,
        base: int = 0,
        flush_instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT,
        runtime: RuntimeProfile = NATIVE,
    ) -> "RomulusRegion":
        """Attach to an existing region, running crash recovery."""
        magic = device.read(base, 8)
        if magic != MAGIC:
            raise ValueError(
                f"no Romulus region at base {base}: bad magic {magic!r}"
            )
        main_size = struct.unpack("<Q", device.read(base + 16, 8))[0]
        region = cls(
            device,
            main_size,
            base=base,
            flush_instruction=flush_instruction,
            runtime=runtime,
        )
        region.recover()
        return region

    def exists(self) -> bool:
        """Whether the device holds a formatted region at our base."""
        return self.device.read(self.base, 8) == MAGIC

    def recover(self) -> RegionState:
        """Run Romulus recovery; returns the state found at attach time."""
        found = self.state
        recorder = self.device.clock.recorder
        if recorder.enabled:
            recorder.count("romulus.recoveries")
            recorder.instant(
                "romulus.recover",
                self.device.clock.now(),
                category="romulus",
                args={"found_state": found.name},
            )
        if found is RegionState.MUTATING:
            # Main may be inconsistent: restore from back.
            self.device.copy_within(
                self.back_base, self.main_base, self.main_size
            )
            self.device.flush(
                self.main_base, self.main_size, self.flush_instruction
            )
            if self.flush_instruction.needs_fence:
                self.fence()
            self.set_state(RegionState.IDLE)
        elif found is RegionState.COPYING:
            # Main is consistent: redo the copy to back (log is gone).
            self.device.copy_within(
                self.main_base, self.back_base, self.main_size
            )
            self.device.flush(
                self.back_base, self.main_size, self.flush_instruction
            )
            if self.flush_instruction.needs_fence:
                self.fence()
            self.set_state(RegionState.IDLE)
        self.active_transaction = False
        return found

    # ------------------------------------------------------------------
    # Data access (main-relative offsets)
    # ------------------------------------------------------------------
    def _check_offset(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.main_size:
            raise IndexError(
                f"region access [{offset}, {offset + length}) outside "
                f"main region of {self.main_size} bytes"
            )

    def read(self, offset: int, length: int) -> bytes:
        """Read from main (sees in-flight transactional writes)."""
        self._check_offset(offset, length)
        return self.device.read(self.main_base + offset, length)

    def read_u64(self, offset: int) -> int:
        """Read a little-endian u64 from main."""
        return struct.unpack("<Q", self.read(offset, 8))[0]

    def read_view(self, offset: int, length: int) -> memoryview:
        """Zero-copy readonly view of main — same simulated cost as
        :meth:`read`; the view is stale after any overlapping store."""
        self._check_offset(offset, length)
        return self.device.read_view(self.main_base + offset, length)

    def staging_view(self, offset: int, length: int) -> memoryview:
        """Writable view of main for producers that generate data in
        place (the zero-copy sealing pipeline).

        Carries no simulated cost and no durability: the covering
        transaction must account the range with
        :meth:`~repro.romulus.transaction.Transaction.write_prefilled`
        before commit, or the bytes are lost on crash.
        """
        self._check_offset(offset, length)
        return self.device.volatile_view(self.main_base + offset, length)

    def read_back(self, offset: int, length: int) -> bytes:
        """Read the back twin (diagnostics/tests only)."""
        self._check_offset(offset, length)
        return self.device.read(self.back_base + offset, length)

    def root(self, index: int) -> int:
        """Read root pointer ``index`` (0 = unset)."""
        if not 0 <= index < NUM_ROOTS:
            raise IndexError(f"root index {index} out of range 0..{NUM_ROOTS - 1}")
        return self.read_u64(_META_ROOTS + 8 * index)

    def root_offset(self, index: int) -> int:
        """Main-relative offset where root ``index`` is stored."""
        if not 0 <= index < NUM_ROOTS:
            raise IndexError(f"root index {index} out of range 0..{NUM_ROOTS - 1}")
        return _META_ROOTS + 8 * index

    def begin_transaction(self) -> "Transaction":
        """Start a durable transaction (context-manager friendly)."""
        from repro.romulus.transaction import Transaction

        return Transaction(self)
