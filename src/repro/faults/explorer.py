"""The crash-schedule explorer: enumerate, replay, check, shrink.

The explorer first runs each workload fault-free under a
:class:`~repro.faults.plan.CountingPlan` (the **golden** run) to learn
how many times every fault point is hit.  That hit census defines the
crash schedule space: one candidate replay per ``(site, hit, kind)``
coordinate a site supports.  Exhaustive mode replays a strided cap of
every site's hits (always including the first and last arrival — the
boundary schedules where ordering bugs hide); sampling mode draws a
seeded, stratified subset that still covers every ``(site, kind)`` pair
at least once.

Each replay injects exactly one fault, drives the workload's recovery,
and records any invariant violations (catalogue in
:mod:`repro.faults.invariants`).  Violating schedules are *shrunk*: the
explorer retries earlier hits at the same site to report the minimal
failing schedule, which is almost always the easiest one to debug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultSpec
from repro.faults.registry import ABORT, CRASH, DROP, FLIP, SITES, TORN
from repro.faults.workload import GoldenRun, ReplayOutcome, make_workload

#: Default bit positions for FLIP points.  ``flip_bit`` reduces the
#: position modulo the record length, so the large prime lands at an
#: effectively arbitrary spot in ciphertext/IV/MAC across record sizes.
DEFAULT_FLIP_BITS: Tuple[int, ...] = (0, 100_003)

#: Replay budget for shrinking one violation.
SHRINK_BUDGET = 6


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs for one exploration run."""

    exhaustive: bool = True
    samples: int = 32
    seed: int = 0
    per_site_cap: int = 6
    flip_bits: Tuple[int, ...] = DEFAULT_FLIP_BITS
    workloads: Tuple[str, ...] = ("train", "link", "serve", "federated")
    shrink: bool = True
    #: When set, every violation's flight-recorder snapshot is written
    #: to ``<flight_dir>/flight-<workload>-<n>.json`` as a standalone
    #: crash artifact (what the CI job uploads on failure).
    flight_dir: Optional[str] = None


@dataclass
class Violation:
    """One schedule that broke an invariant (after shrinking)."""

    workload: str
    spec: Optional[FaultSpec]  # None: the golden run itself violated
    messages: List[str]
    shrunk_from: Optional[FaultSpec] = None
    #: Flight-recorder snapshot of the violating replay — the bounded
    #: tail of spans/counters/fault events leading up to the bad state,
    #: including the ``fault`` entry naming the injected coordinate.
    flight: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "spec": self.spec.describe() if self.spec else "golden",
            "messages": list(self.messages),
            "shrunk_from": (
                self.shrunk_from.describe() if self.shrunk_from else None
            ),
            "flight": self.flight,
        }


@dataclass
class WorkloadReport:
    """Exploration summary for one workload."""

    name: str
    golden_hits: Dict[str, int]
    points: int = 0
    crash_points: int = 0
    points_by_kind: Dict[str, int] = field(default_factory=dict)
    replays: int = 0


@dataclass
class ExplorationReport:
    """Everything one ``explore()`` call learned."""

    config: ExploreConfig
    workloads: List[WorkloadReport] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def points_explored(self) -> int:
        return sum(w.points for w in self.workloads)

    @property
    def crash_points(self) -> int:
        """Distinct (workload, site, hit) crash schedules replayed."""
        return sum(w.crash_points for w in self.workloads)

    def to_dict(self) -> dict:
        return {
            "mode": "exhaustive" if self.config.exhaustive else "sampled",
            "seed": self.config.seed,
            "points_explored": self.points_explored,
            "crash_points": self.crash_points,
            "ok": self.ok,
            "workloads": [
                {
                    "name": w.name,
                    "points": w.points,
                    "crash_points": w.crash_points,
                    "points_by_kind": dict(w.points_by_kind),
                    "replays": w.replays,
                    "golden_hits": dict(sorted(w.golden_hits.items())),
                }
                for w in self.workloads
            ],
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def render_text(self) -> str:
        lines = [
            f"crash-schedule exploration "
            f"({'exhaustive' if self.config.exhaustive else 'sampled'}, "
            f"seed {self.config.seed})",
            f"  points explored : {self.points_explored} "
            f"({self.crash_points} crash schedules)",
        ]
        for w in self.workloads:
            kinds = ", ".join(
                f"{k}={n}" for k, n in sorted(w.points_by_kind.items())
            )
            lines.append(
                f"  workload {w.name:<6}: {w.points} points over "
                f"{len(w.golden_hits)} sites ({kinds})"
            )
        if self.ok:
            lines.append("  invariants      : all hold (0 violations)")
        else:
            lines.append(
                f"  VIOLATIONS      : {len(self.violations)} schedule(s) "
                "broke an invariant"
            )
            for v in self.violations:
                spec = v.spec.describe() if v.spec else "golden run"
                lines.append(f"    [{v.workload}] {spec}")
                if v.shrunk_from is not None:
                    lines.append(
                        f"      (shrunk from {v.shrunk_from.describe()})"
                    )
                for msg in v.messages:
                    lines.append(f"      - {msg}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _strided_hits(total: int, cap: int) -> List[int]:
    """Up to ``cap`` hit indices in [1, total], always keeping 1 and
    ``total`` (the boundary schedules)."""
    if total <= 0:
        return []
    if total <= cap:
        return list(range(1, total + 1))
    picks = {
        1 + round(i * (total - 1) / (cap - 1)) for i in range(cap)
    }
    return sorted(picks)


def _specs_for_site(
    site_name: str, total_hits: int, config: ExploreConfig
) -> List[FaultSpec]:
    """Every candidate spec for one site under the config's caps."""
    site = SITES[site_name]
    cap = config.per_site_cap
    out: List[FaultSpec] = []
    if site.supports(CRASH):
        for hit in _strided_hits(total_hits, cap):
            out.append(FaultSpec(site_name, hit, CRASH))
    if site.supports(TORN):
        for hit in _strided_hits(total_hits, min(cap, 3)):
            for fraction in (0.0, 0.5):
                out.append(
                    FaultSpec(site_name, hit, TORN, fraction=fraction)
                )
    if site.supports(ABORT):
        for hit in _strided_hits(total_hits, min(cap, 3)):
            out.append(FaultSpec(site_name, hit, ABORT))
    if site.supports(DROP):
        for hit in _strided_hits(total_hits, min(cap, 3)):
            out.append(FaultSpec(site_name, hit, DROP))
    if site.supports(FLIP):
        for hit in _strided_hits(total_hits, min(cap, 3)):
            for bit in config.flip_bits:
                out.append(FaultSpec(site_name, hit, FLIP, bit=bit))
    return out


def enumerate_points(
    golden: GoldenRun, config: ExploreConfig
) -> List[FaultSpec]:
    """All candidate fault specs for one workload's golden hit census."""
    specs: List[FaultSpec] = []
    for site_name, total in sorted(golden.hits.items()):
        if site_name not in SITES:
            continue  # a site outside the registry cannot be scheduled
        specs.extend(_specs_for_site(site_name, total, config))
    return specs


def _sample_points(
    specs: Sequence[FaultSpec], config: ExploreConfig
) -> List[FaultSpec]:
    """Seeded stratified sample: ≥1 point per (site, kind), then fill."""
    import numpy as np

    rng = np.random.default_rng(config.seed)
    by_stratum: Dict[Tuple[str, str], List[FaultSpec]] = {}
    for spec in specs:
        by_stratum.setdefault((spec.site, spec.kind), []).append(spec)
    chosen: List[FaultSpec] = []
    for key in sorted(by_stratum):
        bucket = by_stratum[key]
        chosen.append(bucket[int(rng.integers(0, len(bucket)))])
    remaining = [s for s in specs if s not in chosen]
    extra = max(0, config.samples - len(chosen))
    if extra and remaining:
        idx = rng.choice(
            len(remaining), size=min(extra, len(remaining)), replace=False
        )
        chosen.extend(remaining[int(i)] for i in sorted(idx))
    return chosen


def _shrink(
    workload, spec: FaultSpec
) -> Tuple[FaultSpec, ReplayOutcome, Optional[FaultSpec]]:
    """Find an earlier failing hit at the same site (bounded replays)."""
    candidates = sorted(
        {
            h
            for h in (
                1,
                2,
                spec.hit // 8,
                spec.hit // 4,
                spec.hit // 2,
                (3 * spec.hit) // 4,
            )
            if 1 <= h < spec.hit
        }
    )[:SHRINK_BUDGET]
    for hit in candidates:
        smaller = FaultSpec(
            spec.site, hit, spec.kind, bit=spec.bit, fraction=spec.fraction
        )
        outcome = workload.replay(smaller)
        if outcome.violations:
            return smaller, outcome, spec
    return spec, workload.replay(spec), None


def _dump_flight(
    report: ExplorationReport, violation: Violation, flight_dir: Optional[str]
) -> None:
    """Write one violation's flight snapshot as a standalone artifact."""
    if flight_dir is None or violation.flight is None:
        return
    import os

    os.makedirs(flight_dir, exist_ok=True)
    index = len(report.violations)  # violation already appended: 1-based
    path = os.path.join(
        flight_dir, f"flight-{violation.workload}-{index}.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(violation.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
def explore(config: Optional[ExploreConfig] = None) -> ExplorationReport:
    """Run the full golden → enumerate → replay → check → shrink loop."""
    config = config if config is not None else ExploreConfig()
    report = ExplorationReport(config=config)
    for name in config.workloads:
        workload = make_workload(name)
        golden = workload.golden()
        wreport = WorkloadReport(name=name, golden_hits=dict(golden.hits))
        report.workloads.append(wreport)
        if golden.violations:
            report.violations.append(
                Violation(
                    workload=name,
                    spec=None,
                    messages=list(golden.violations),
                    flight=golden.flight,
                )
            )
            _dump_flight(report, report.violations[-1], config.flight_dir)
            continue  # a broken golden run invalidates every replay
        specs = enumerate_points(golden, config)
        if not config.exhaustive:
            specs = _sample_points(specs, config)
        for spec in specs:
            wreport.points += 1
            wreport.points_by_kind[spec.kind] = (
                wreport.points_by_kind.get(spec.kind, 0) + 1
            )
            if spec.kind == CRASH:
                wreport.crash_points += 1
            outcome = workload.replay(spec)
            wreport.replays += 1
            if not outcome.violations:
                continue
            shrunk_from: Optional[FaultSpec] = None
            if config.shrink and spec.hit > 1:
                spec, outcome, shrunk_from = _shrink(workload, spec)
                wreport.replays += 1 + (
                    0 if shrunk_from is None else 1
                )
            report.violations.append(
                Violation(
                    workload=name,
                    spec=spec,
                    messages=list(outcome.violations),
                    shrunk_from=shrunk_from,
                    flight=outcome.flight,
                )
            )
            _dump_flight(report, report.violations[-1], config.flight_dir)
    return report
