"""Deterministic fault injection and crash-schedule exploration.

Layering note: instrumented modules (``repro.hw.pmem`` and friends)
import :mod:`repro.faults.plan` at module scope, so this package
initializer must stay dependency-light — it re-exports only the plan
and registry halves eagerly.  The explorer/workload/mutation machinery
(which imports ``repro.core`` and would create an import cycle through
the instrumented modules) is loaded lazily on first attribute access.
"""

from repro.faults.plan import (
    ACTIVE,
    NULL_PLAN,
    BaseFaultPlan,
    CountingPlan,
    CrashSchedulePlan,
    FaultSpec,
    InjectedCrash,
    InjectedEcallAbort,
    InjectedFault,
    InjectedLinkDrop,
    NullFaultPlan,
    TornFlush,
    flip_bit,
    get_active_plan,
    install_plan,
    installed,
)
from repro.faults.registry import (
    ABORT,
    ALL_KINDS,
    CRASH,
    DROP,
    FLIP,
    SITES,
    TORN,
    FaultSite,
    UnknownSiteError,
    crashable_sites,
    require_site,
    sites_for_layer,
)

_LAZY = {
    "explore": "repro.faults.explorer",
    "ExploreConfig": "repro.faults.explorer",
    "ExplorationReport": "repro.faults.explorer",
    "ReplayOutcome": "repro.faults.explorer",
    "Violation": "repro.faults.explorer",
    "TrainWorkload": "repro.faults.workload",
    "LinkWorkload": "repro.faults.workload",
    "GoldenRun": "repro.faults.workload",
    "MUTANTS": "repro.faults.mutations",
    "apply_mutant": "repro.faults.mutations",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
