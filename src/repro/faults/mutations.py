"""Self-validation mutants: deliberately broken crash-consistency code.

An explorer that never finds anything might be checking nothing.  Each
mutant below re-introduces a classic persistence bug behind a context
manager; running the explorer under a mutant (``repro crashtest
--mutate NAME``) must produce invariant violations, or the explorer
itself is broken.  ``tests/test_faults_explorer.py`` asserts exactly
that for every registered mutant.

The mutants (and the invariant expected to catch them):

* ``commit-idle-before-copy`` — commit skips the COPYING advertisement
  and the main→back twin copy, jumping straight to IDLE.  The durable
  snapshot goes stale, so the next crash-recovery restores pre-history:
  committed data vanishes (I6) or twins diverge (I1).
* ``recovery-skip-restore`` — recovery acknowledges the crash but
  restores nothing, trusting a possibly half-mutated main (the moral
  equivalent of skipping the SFENCE ordering in the twin-copy flip).
  Caught by twin divergence (I1) or MAC failures (I2).
* ``reuse-iv`` — the engine hands out one constant AES-GCM IV.  Caught
  at the golden run already by IV-uniqueness (I5).
* ``no-mac-check`` — integrity failures are swallowed and zero-filled
  plaintext returned.  Caught by tamper-evidence (I7) and by the loss
  trajectory diverging once garbage enters training (I3).
* ``host-reboot-skip-recovery`` — a cluster host's region attach maps
  the region without running Romulus recovery, so a reboot after a
  mid-transaction crash trusts a half-mutated main twin.  Caught by the
  recovery-count invariant (I4: every substrate reboot must run exactly
  one recovery) and by stale/torn state downstream (I1/I2/I6).
* ``fed-commit-before-durable`` — the federated coordinator
  acknowledges a round (volatile publish + client-visible callback)
  *before* the round's Merkle root and sealed merged parameters enter
  their Romulus transaction.  A crash at the ``fed.commit`` coordinate
  then lands after the ack but before durability, so recovery finds
  the ledger tip behind what was acknowledged — caught by
  committed-round monotonicity (I8) and, downstream, by the resumed
  federation re-running an already-acknowledged round (I9).
"""

from __future__ import annotations

import contextlib
import struct
from typing import Callable, Dict, Iterator

from repro.cluster.host import Host
from repro.crypto.backend import IntegrityError
from repro.crypto.engine import IV_SIZE, SEAL_OVERHEAD, EncryptionEngine
from repro.faults import plan as faultplan
from repro.romulus.region import MAGIC, RegionState, RomulusRegion
from repro.romulus.transaction import Transaction


@contextlib.contextmanager
def _commit_idle_before_copy() -> Iterator[None]:
    original = Transaction.commit

    def broken_commit(self) -> None:
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("romulus.tx.commit")
        self._check_open()
        region = self.region
        if region.flush_instruction.needs_fence:
            region.fence()
        # BUG: no COPYING state, no main->back copy — the durable
        # snapshot silently goes stale.
        region.set_state(RegionState.IDLE, fence=False)
        region.device.clock.recorder.count("romulus.commits")
        self._close()

    Transaction.commit = broken_commit
    try:
        yield
    finally:
        Transaction.commit = original


@contextlib.contextmanager
def _recovery_skip_restore() -> Iterator[None]:
    original = RomulusRegion.recover

    def broken_recover(self) -> RegionState:
        found = self.state
        recorder = self.device.clock.recorder
        if recorder.enabled:
            recorder.count("romulus.recoveries")
            recorder.instant(
                "romulus.recover",
                self.device.clock.now(),
                category="romulus",
                args={"found_state": found.name},
            )
        # BUG: acknowledge the crash but restore nothing — trust a
        # possibly half-mutated main twin.
        if found is not RegionState.IDLE:
            self.set_state(RegionState.IDLE)
        self.active_transaction = False
        return found

    RomulusRegion.recover = broken_recover
    try:
        yield
    finally:
        RomulusRegion.recover = original


@contextlib.contextmanager
def _reuse_iv() -> Iterator[None]:
    original = EncryptionEngine.new_iv

    def constant_iv(self) -> bytes:
        # BUG: every sealed record shares one IV — fatal for GCM.
        return b"\x42" * IV_SIZE

    EncryptionEngine.new_iv = constant_iv
    try:
        yield
    finally:
        EncryptionEngine.new_iv = original


@contextlib.contextmanager
def _no_mac_check() -> Iterator[None]:
    original_unseal = EncryptionEngine.unseal
    original_unseal_from = EncryptionEngine.unseal_from

    def lax_unseal(self, sealed, aad=b""):
        try:
            return original_unseal(self, sealed, aad)
        except IntegrityError:
            # BUG: swallow the authentication failure and hand back
            # unauthenticated (zeroed) plaintext.
            return b"\x00" * max(0, len(bytes(sealed)) - SEAL_OVERHEAD)

    def lax_unseal_from(self, sealed, out, aad=b""):
        try:
            return original_unseal_from(self, sealed, out, aad)
        except IntegrityError:
            n = max(0, len(memoryview(sealed)) - SEAL_OVERHEAD)
            memoryview(out)[:n] = b"\x00" * n
            return n

    EncryptionEngine.unseal = lax_unseal
    EncryptionEngine.unseal_from = lax_unseal_from
    try:
        yield
    finally:
        EncryptionEngine.unseal = original_unseal
        EncryptionEngine.unseal_from = original_unseal_from


@contextlib.contextmanager
def _host_reboot_skip_recovery() -> Iterator[None]:
    original = Host.open_region

    def broken_open_region(self) -> RomulusRegion:
        if self.pm is None:
            raise RuntimeError(f"host {self.name!r} has no PM device")
        if self.pm.read(0, 8) != MAGIC:
            raise ValueError(
                "no Romulus region found on this host's device"
            )
        main_size = struct.unpack("<Q", self.pm.read(16, 8))[0]
        region = RomulusRegion(self.pm, main_size)
        # BUG: the reboot maps the region without running Romulus
        # recovery — no restore, no recovery counter; a crash that
        # landed mid-transaction leaves main half-mutated and trusted.
        region.active_transaction = False
        return region

    Host.open_region = broken_open_region
    try:
        yield
    finally:
        Host.open_region = original


@contextlib.contextmanager
def _fed_commit_before_durable() -> Iterator[None]:
    from repro.federated.coordinator import FederatedCoordinator

    original = FederatedCoordinator._finalize

    def broken_finalize(self, result, payloads) -> None:
        if self.on_note is not None:
            self.on_note(result)
        # BUG: the round is published (clients observe the ack) before
        # its Merkle root + sealed params are durable — a crash at the
        # fed.commit coordinate now strands an acknowledged round.
        self._ack_round(result)
        self._commit_round(result, payloads)

    FederatedCoordinator._finalize = broken_finalize
    try:
        yield
    finally:
        FederatedCoordinator._finalize = original


#: name -> context-manager factory installing the broken variant.
MUTANTS: Dict[str, Callable[[], "contextlib.AbstractContextManager"]] = {
    "commit-idle-before-copy": _commit_idle_before_copy,
    "recovery-skip-restore": _recovery_skip_restore,
    "reuse-iv": _reuse_iv,
    "no-mac-check": _no_mac_check,
    "host-reboot-skip-recovery": _host_reboot_skip_recovery,
    "fed-commit-before-durable": _fed_commit_before_durable,
}


def apply_mutant(name: str) -> "contextlib.AbstractContextManager":
    """Context manager installing the named mutant for its duration."""
    try:
        factory = MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutant {name!r}; choose from {sorted(MUTANTS)}"
        ) from None
    return factory()
