"""Injectable fault plans — the null-object hot-path half of ``repro.faults``.

Instrumented modules consult the process-default plan at every fault
point::

    from repro.faults import plan as faultplan
    ...
    active = faultplan.ACTIVE
    if active.enabled:
        active.check("pm.store")

With no plan installed ``ACTIVE`` is the shared :data:`NULL_PLAN`
(``enabled = False``): the cost is one module-attribute load and one
boolean test, mirroring the ``repro.obs`` null-recorder discipline so
the fault machinery is free on every hot path by default.

Plans are deterministic: every plan counts site hits in arrival order,
so the hit index of an operation is identical between a golden (fault
free) run and a replay of the same workload.  A
:class:`CrashSchedulePlan` fires its :class:`FaultSpec` at exactly one
``(site, hit)`` coordinate; crash-kind faults then **latch** — every
subsequent fault-point hit re-raises :class:`InjectedCrash`, so
exception-path cleanup code (transaction aborts, restore loops) cannot
keep mutating the simulated machine after the instant of power failure.
The workload driver calls :meth:`BaseFaultPlan.disarm` before crashing
the devices and rebooting, which silences the plan for the rest of the
replay (recovery runs fault-free).

Injected exceptions derive from :class:`BaseException` (not
``Exception``) so library-level ``except Exception`` handlers cannot
absorb a simulated power failure.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.registry import (
    ABORT,
    CRASH,
    DROP,
    FLIP,
    TORN,
    require_site,
)

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedEcallAbort",
    "InjectedLinkDrop",
    "TornFlush",
    "NullFaultPlan",
    "NULL_PLAN",
    "ACTIVE",
    "BaseFaultPlan",
    "CountingPlan",
    "CrashSchedulePlan",
    "install_plan",
    "get_active_plan",
    "installed",
    "flip_bit",
]


class InjectedFault(BaseException):
    """Base of every injected fault (deliberately not ``Exception``)."""


class InjectedCrash(InjectedFault):
    """The simulated process stops here — power failure / SIGKILL."""


class InjectedEcallAbort(InjectedFault):
    """The enclave transition failed (SGX_ERROR_* returned to the host)."""


class InjectedLinkDrop(InjectedFault):
    """The in-flight link message was lost; the sender may retry."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault coordinate: fire ``kind`` at hit ``hit`` of ``site``.

    ``hit`` is 1-based: ``hit=1`` fires at the first time the site is
    reached.  ``bit`` selects the flipped bit for FLIP faults;
    ``fraction`` bounds how much of a torn flush persists.
    """

    site: str
    hit: int
    kind: str = CRASH
    bit: int = 0
    fraction: float = 0.5

    def __post_init__(self) -> None:
        site = require_site(self.site)
        if not site.supports(self.kind):
            raise ValueError(
                f"site {self.site!r} does not support kind {self.kind!r} "
                f"(supported: {', '.join(site.kinds)})"
            )
        if self.hit < 1:
            raise ValueError(f"hit index is 1-based, got {self.hit}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.bit < 0:
            raise ValueError(f"bit index must be >= 0, got {self.bit}")

    def describe(self) -> str:
        extra = ""
        if self.kind == FLIP:
            extra = f" bit={self.bit}"
        elif self.kind == TORN:
            extra = f" fraction={self.fraction}"
        return f"{self.kind}@{self.site}#{self.hit}{extra}"


class TornFlush:
    """Returned by ``check("pm.flush")`` when a TORN fault fires.

    The PM device persists dirty cache lines only until the byte budget
    implied by ``fraction`` is exhausted, then calls :meth:`crash` —
    which latches the owning plan and raises :class:`InjectedCrash`.
    """

    __slots__ = ("fraction", "_plan", "spec")

    def __init__(self, plan: "CrashSchedulePlan", spec: FaultSpec) -> None:
        self.fraction = spec.fraction
        self._plan = plan
        self.spec = spec

    def crash(self) -> None:
        self._plan._latched = True
        raise InjectedCrash(self.spec.describe())


def flip_bit(payload: bytes, bit: int) -> bytes:
    """Return ``payload`` with bit ``bit % (8 * len(payload))`` flipped."""
    if not payload:
        return payload
    bit %= 8 * len(payload)
    tampered = bytearray(payload)
    tampered[bit // 8] ^= 1 << (bit % 8)
    return bytes(tampered)


class NullFaultPlan:
    """The disabled plan: both entry points are allocation-free no-ops."""

    enabled = False

    def check(self, site: str) -> None:
        return None

    def mutate(self, site: str, payload: bytes) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullFaultPlan()"


NULL_PLAN = NullFaultPlan()

#: The process-default plan consulted by every instrumented site.
ACTIVE = NULL_PLAN


def install_plan(plan) -> object:
    """Install ``plan`` as the process default; returns the previous one.

    Callers restore the previous plan when done (or use
    :func:`installed`); the autouse test fixture fails any test that
    leaks an override.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = plan if plan is not None else NULL_PLAN
    return previous


def get_active_plan():
    """The currently installed plan (:data:`NULL_PLAN` by default)."""
    return ACTIVE


@contextlib.contextmanager
def installed(plan) -> Iterator[object]:
    """Context manager: install ``plan``, restore the previous on exit."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


class BaseFaultPlan:
    """Deterministic hit counting shared by every enabled plan.

    Subclasses implement :meth:`_on_hit`; the base class guarantees that
    hit indices are assigned identically across runs of the same
    workload (golden enumeration and crash replay see the same
    numbering), records every IV that passes through ``crypto.seal``
    (for the IV-uniqueness invariant), and implements the post-crash
    latch described in the module docstring.
    """

    enabled = True

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self.boot_epoch = 0
        #: (boot_epoch, iv) for every seal observed — IV-uniqueness check.
        self.seal_ivs: List[Tuple[int, bytes]] = []
        self.fired = False
        self._latched = False
        self._disarmed = False

    # -- driver API ----------------------------------------------------
    def mark_boot(self) -> None:
        """Called by the workload driver at each (re)boot."""
        self.boot_epoch += 1

    def disarm(self) -> None:
        """Silence the plan: recovery and invariant checks run fault-free."""
        self._disarmed = True
        self._latched = False

    def total_hits(self) -> int:
        return sum(self.hits.values())

    # -- instrumented-site API -----------------------------------------
    def check(self, site: str):
        n = self._step(site)
        if n is None:
            return None
        return self._on_hit(site, n, None)

    def mutate(self, site: str, payload: bytes) -> Optional[bytes]:
        n = self._step(site)
        if n is None:
            return None
        if site == "crypto.seal":
            self.seal_ivs.append((self.boot_epoch, bytes(payload)))
        return self._on_hit(site, n, payload)

    # -- internals -----------------------------------------------------
    def _step(self, site: str) -> Optional[int]:
        if self._disarmed:
            return None
        if self._latched:
            raise InjectedCrash("post-crash latch: machine is down")
        n = self.hits.get(site, 0) + 1
        self.hits[site] = n
        return n

    def _on_hit(self, site: str, n: int, payload: Optional[bytes]):
        raise NotImplementedError

    def duplicate_ivs(self) -> List[bytes]:
        """IVs sealed more than once within a single boot epoch."""
        seen: Dict[Tuple[int, bytes], int] = {}
        duplicates = []
        for epoch, iv in self.seal_ivs:
            seen[(epoch, iv)] = seen.get((epoch, iv), 0) + 1
            if seen[(epoch, iv)] == 2:
                duplicates.append(iv)
        return duplicates


class CountingPlan(BaseFaultPlan):
    """Golden-run plan: counts every hit, never fires anything."""

    def _on_hit(self, site: str, n: int, payload: Optional[bytes]) -> None:
        return None


@dataclass
class _FiredRecord:
    """What actually happened when a plan fired (explorer bookkeeping)."""

    site: str
    hit: int
    kind: str


class CrashSchedulePlan(BaseFaultPlan):
    """Fires one :class:`FaultSpec` at its ``(site, hit)`` coordinate."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__()
        self.spec = spec
        self.fired_record: Optional[_FiredRecord] = None
        #: Number of FLIP payloads handed back tampered.
        self.flips_delivered = 0

    def _on_hit(self, site: str, n: int, payload: Optional[bytes]):
        spec = self.spec
        if self.fired or site != spec.site or n != spec.hit:
            return None
        self.fired = True
        self.fired_record = _FiredRecord(site=site, hit=n, kind=spec.kind)
        if spec.kind == CRASH:
            self._latched = True
            raise InjectedCrash(spec.describe())
        if spec.kind == TORN:
            return TornFlush(self, spec)
        if spec.kind == ABORT:
            raise InjectedEcallAbort(spec.describe())
        if spec.kind == DROP:
            raise InjectedLinkDrop(spec.describe())
        if spec.kind == FLIP:
            if payload is None:
                raise InjectedCrash(
                    f"FLIP fired at payload-less site {site!r}: "
                    f"{spec.describe()}"
                )
            self.flips_delivered += 1
            return flip_bit(bytes(payload), spec.bit)
        raise AssertionError(f"unreachable kind {spec.kind!r}")
