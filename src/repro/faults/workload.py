"""Crash-replayable workloads for the schedule explorer.

A *workload* is a deterministic end-to-end scenario that can be run
fault-free (the **golden** run, executed under a
:class:`~repro.faults.plan.CountingPlan` to enumerate every fault-point
hit) and then replayed under a :class:`~repro.faults.plan.CrashSchedulePlan`
that injects exactly one fault at a chosen ``(site, hit)`` coordinate.
After the fault the workload performs whatever recovery the real system
would (reboot, Romulus recovery, mirror-in, retry) and the replay's
final state is checked against the golden run's.

Three workloads cover the whole instrumented surface:

* :class:`TrainWorkload` — the single-machine Plinius stack: sealed-key
  provisioning over SSD + sgx sealing ecalls, Romulus region format/
  open, encrypted dataset load into PM, and mirrored SGD training.
  Exercises the ``pm.*``, ``ssd.*``, ``romulus.*``, ``sgx.*`` and
  ``crypto.*`` sites.
* :class:`LinkWorkload` — one stage worker training against a secure
  inter-enclave link, with per-step mirroring and kill/resume recovery.
  Exercises the ``link.*`` and ``distributed.worker.*`` sites.
* :class:`ServeWorkload` — the replicated inference gateway serving
  sealed requests across a mid-run hot model reload.  Exercises the
  ``serve.*`` sites (plus the ``crypto.*``/``pm.*``/``romulus.*`` hits
  of in-band sealing and the generation-2 mirror commit).

All three machines are deployments on the shared simulated-cluster
substrate (:mod:`repro.cluster`): durable hardware lives on named
:class:`~repro.cluster.host.Host` members, region attach goes through
the hosts' ``open_region``/``format_region`` recovery entry points (the
seam the ``host-reboot-skip-recovery`` mutant breaks), datasets and
tensors cross :class:`~repro.cluster.network.ClusterNetwork` edges, and
a crash is a host power failure.  That puts the ``cluster.host_kill``,
``cluster.partition`` and ``cluster.deliver`` coordinates in every
workload's golden census, so the explorer can kill a host or cut a wire
at any instrumented point of all three scenarios.

Determinism contract: every run builds a fresh machine from fixed seeds,
so the n-th arrival at a fault point is the same program state in the
golden run and in every replay.  Anything nondeterministic (wall-clock,
``os.urandom``, thread scheduling) is excluded by construction — seeded
:class:`~repro.sgx.rand.SgxRandom` IVs, per-iteration batch RNGs, and
serial sealing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.fabric import ServingFabric
from repro.cluster.link import ClusterLink
from repro.cluster.runtime import Cluster
from repro.core.mirror import MirrorModule
from repro.core.models import build_mnist_cnn
from repro.core.pm_data import PmDataModule
from repro.core.trainer import PliniusTrainer
from repro.crypto.backend import IntegrityError
from repro.crypto.engine import EncryptionEngine
from repro.darknet.data import DataMatrix
from repro.data.mnist import synthetic_mnist, to_data_matrix
from repro.faults.plan import (
    BaseFaultPlan,
    CountingPlan,
    CrashSchedulePlan,
    FaultSpec,
    InjectedCrash,
    InjectedEcallAbort,
    InjectedLinkDrop,
    installed,
)
from repro.faults.registry import FLIP
from repro.faults import invariants
from repro.obs.recorder import TraceRecorder
from repro.romulus.alloc import PersistentHeap
from repro.romulus.region import HEADER_SIZE, MAGIC
from repro.sgx.ecall import EnclaveRuntime
from repro.sgx.enclave import Enclave
# repro: noqa[SEC002] -- the fault workloads assemble a full secure
# machine exactly like the core facade does; they are explorer
# infrastructure, not trusted code.
from repro.sgx.rand import SgxRandom
# repro: noqa[SEC002] -- same rationale: workload assembly, not enclave code.
from repro.sgx.sealing import SealedBlob, seal_data, unseal_data
from repro.simtime.clock import SimClock
from repro.simtime.profiles import get_profile

#: SSD file holding the sealed data-encryption key.
KEY_FILE = "sealed_key.bin"

#: A replay injects exactly one fault, so legitimate runs need at most
#: one extra boot (plus one more for a fail-stop integrity rejection).
MAX_REBOOTS = 4

#: Bounded retries for the dataset fetch over the cluster wire
#: (reliable transport over a lossy link, like the link workload's).
MAX_FETCH_ATTEMPTS = 4


@dataclass
class GoldenRun:
    """Everything a replay is compared against."""

    hits: Dict[str, int]
    losses: Dict[int, float]
    final_iteration: int
    stored_iteration: int
    params_digest: str
    violations: List[str] = field(default_factory=list)
    #: Flight-recorder snapshot of the golden run (last-N telemetry
    #: events); dumped by the explorer when the golden run itself broke.
    flight: Optional[dict] = None


@dataclass
class ReplayOutcome:
    """Result of one fault-injected replay (or of the golden run)."""

    spec: Optional[FaultSpec] = None
    fired: bool = False
    completed: bool = False
    reboots: int = 0
    integrity_rejections: int = 0
    violations: List[str] = field(default_factory=list)
    losses: Dict[int, float] = field(default_factory=dict)
    final_iteration: int = 0
    stored_iteration: int = 0
    params_digest: str = ""
    #: Flight-recorder snapshot of the replay machine: the bounded tail
    #: of spans/counters/fault events leading up to the final state.
    #: Always captured (the ring is cheap); the explorer attaches it to
    #: a :class:`~repro.faults.explorer.Violation` when invariants broke
    #: so every failure report carries its own black box.
    flight: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _note_fault(machine, spec, event: str) -> None:
    """Stamp an injected-fault delivery into the machine's flight ring.

    The ring entry names the exact ``(site, hit, kind)`` coordinate (or
    the exception class for golden runs, where no spec exists), so a
    violation dump pins which injection preceded the bad state.
    """
    label = spec.describe() if spec is not None else event
    machine.recorder.flight.add("fault", label, machine.clock.now())


def params_digest(network) -> str:
    """Bit-exact digest of every parameter buffer of a network."""
    h = hashlib.sha256()
    for _, (_, array) in network.parameter_buffers():
        h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


class _TrainMachine:
    """Durable hardware plus the run-level bookkeeping of one replay.

    A two-host deployment: the ``trainer`` host owns the PM region and
    the sealed-key SSD; the ``datastore`` host serves the encrypted
    training matrix over a network edge on first load.
    """

    def __init__(self, pm_size: int, server: str, seed: int) -> None:
        self.profile = get_profile(server)
        self.clock = SimClock()
        self.recorder = TraceRecorder()
        self.clock.recorder = self.recorder
        self.cluster = Cluster(self.clock)
        self.host = self.cluster.add_host(
            "trainer", self.profile, pm_size=pm_size, with_ssd=True
        )
        self.cluster.add_host("datastore", self.profile)
        self.cluster.connect("trainer", "datastore")
        self.pm = self.host.pm
        self.ssd = self.host.ssd
        self.rand = SgxRandom(b"faults-train-" + seed.to_bytes(4, "big"))
        self.device_key = hashlib.sha256(
            b"faults-platform-" + seed.to_bytes(4, "big")
        ).digest()[:16]
        # Observed-committed state, for the I6 durability checks.
        self.format_completed = False
        self.data_load_completed = False
        self.last_committed_mirror = 0
        self.losses: Dict[int, float] = {}
        self.final_iteration = 0
        self.stored_iteration = 0
        self.params_digest = ""

    def power_fail(self) -> None:
        self.cluster.power_fail()


class _TrackedMirror(MirrorModule):
    """Mirror that records which iterations were durably committed."""

    machine: Optional[_TrainMachine] = None

    def mirror_out(self, network, iteration):
        timing = super().mirror_out(network, iteration)
        # Only reached when the transaction committed: the iteration is
        # now durable and must survive any later crash (invariant I6).
        if self.machine is not None:
            self.machine.last_committed_mirror = iteration
        return timing


class TrainWorkload:
    """Single-machine Plinius training under fault injection."""

    name = "train"

    def __init__(
        self,
        server: str = "emlSGX-PM",
        iterations: int = 3,
        rows: int = 48,
        batch: int = 8,
        pm_size: int = 1 << 20,
        seed: int = 1234,
    ) -> None:
        self.server = server
        self.iterations = iterations
        self.rows = rows
        self.batch = batch
        self.pm_size = pm_size
        self.seed = seed
        self._golden: Optional[GoldenRun] = None
        self._data: Optional[DataMatrix] = None

    # ------------------------------------------------------------------
    def _data_matrix(self) -> DataMatrix:
        if self._data is None:
            images, labels, _, _ = synthetic_mnist(
                n_train=self.rows, n_test=1, seed=self.seed
            )
            self._data = to_data_matrix(images, labels)
        return self._data

    def _network(self):
        net = build_mnist_cnn(
            n_conv_layers=1,
            filters=2,
            batch=self.batch,
            learning_rate=0.1,
            rng=np.random.default_rng(self.seed),
        )
        # Optimizer state (momentum velocities) is volatile by design —
        # the mirror persists only the paper's parameter buffers.  With
        # momentum off, crash+resume is bit-identical to the golden run,
        # which is the equivalence invariant I3 checks.
        net.momentum = 0.0
        return net

    # ------------------------------------------------------------------
    def golden(self) -> GoldenRun:
        """Fault-free run under a counting plan; cached."""
        if self._golden is None:
            plan = CountingPlan()
            outcome = self._run(plan)
            violations = list(outcome.violations)
            if not outcome.completed:
                violations.append("golden run failed to complete")
            if outcome.reboots:
                violations.append(
                    f"golden run rebooted {outcome.reboots} times"
                )
            dups = plan.duplicate_ivs()
            if dups:
                violations.append(
                    f"I5: {len(dups)} AES-GCM IVs reused within one boot"
                )
            self._golden = GoldenRun(
                hits=dict(plan.hits),
                losses=dict(outcome.losses),
                final_iteration=outcome.final_iteration,
                stored_iteration=outcome.stored_iteration,
                params_digest=outcome.params_digest,
                violations=violations,
                flight=outcome.flight,
            )
        return self._golden

    def replay(self, spec: FaultSpec) -> ReplayOutcome:
        """Replay with one injected fault; check invariants vs golden."""
        golden = self.golden()
        plan = CrashSchedulePlan(spec)
        outcome = self._run(plan)
        outcome.spec = spec
        outcome.fired = plan.fired
        v = outcome.violations
        if not plan.fired:
            v.append(
                f"fault {spec.describe()} never fired (golden saw "
                f"{golden.hits.get(spec.site, 0)} hits at this site)"
            )
        dups = plan.duplicate_ivs()
        if dups:
            v.append(f"I5: {len(dups)} AES-GCM IVs reused within one boot")
        if spec.kind == FLIP and plan.fired:
            if outcome.integrity_rejections == 0:
                v.append(
                    "I7: a delivered bit-flip in a sealed record was "
                    "accepted without an IntegrityError"
                )
        if outcome.completed:
            for it, loss in outcome.losses.items():
                if it in golden.losses and golden.losses[it] != loss:
                    v.append(
                        f"I3: loss at iteration {it} diverged: golden "
                        f"{golden.losses[it]!r} vs resumed {loss!r}"
                    )
            if outcome.final_iteration != golden.final_iteration:
                v.append(
                    f"I3: reached iteration {outcome.final_iteration}, "
                    f"golden reached {golden.final_iteration}"
                )
            if outcome.params_digest != golden.params_digest:
                v.append(
                    "I3: final model parameters diverged from the "
                    "uninterrupted run"
                )
            if outcome.stored_iteration != golden.stored_iteration:
                v.append(
                    f"I6: final mirror stores iteration "
                    f"{outcome.stored_iteration}, expected "
                    f"{golden.stored_iteration}"
                )
        elif not v:
            v.append("run did not complete yet no violation was recorded")
        return outcome

    # ------------------------------------------------------------------
    def _run(self, plan: BaseFaultPlan) -> ReplayOutcome:
        machine = _TrainMachine(self.pm_size, self.server, self.seed)
        outcome = ReplayOutcome()
        spec = getattr(plan, "spec", None)
        with installed(plan):
            while True:
                plan.mark_boot()
                try:
                    self._boot(machine, outcome.violations)
                    outcome.completed = True
                    break
                except InjectedCrash:
                    _note_fault(machine, spec, "crash")
                except InjectedEcallAbort:
                    _note_fault(machine, spec, "ecall-abort")
                except InjectedLinkDrop:
                    outcome.violations.append(
                        "link drop escaped into the train workload"
                    )
                    break
                except IntegrityError as exc:
                    _note_fault(machine, spec, "integrity-rejection")
                    outcome.integrity_rejections += 1
                    expected = (
                        spec is not None
                        and spec.kind == FLIP
                        and outcome.integrity_rejections == 1
                    )
                    if not expected:
                        outcome.violations.append(
                            "I2: sealed data failed its MAC check after "
                            f"a {spec.kind if spec else 'golden'} fault: "
                            f"{exc}"
                        )
                        break
                    # A transient flip is fail-stop: crash and reboot.
                except Exception as exc:  # noqa: BLE001 — I0 catch-all
                    outcome.violations.append(
                        f"I0: unexpected {type(exc).__name__} escaped the "
                        f"workload: {exc}"
                    )
                    break
                plan.disarm()
                machine.power_fail()
                outcome.reboots += 1
                if outcome.reboots > MAX_REBOOTS:
                    outcome.violations.append(
                        f"machine failed to recover within {MAX_REBOOTS} "
                        "reboots"
                    )
                    break
        outcome.losses = dict(machine.losses)
        outcome.final_iteration = machine.final_iteration
        outcome.stored_iteration = machine.stored_iteration
        outcome.params_digest = machine.params_digest
        outcome.flight = machine.recorder.flight.snapshot()
        return outcome

    # ------------------------------------------------------------------
    def _fetch_dataset(self, m: _TrainMachine) -> DataMatrix:
        """Pull the training matrix from the datastore over the wire.

        Bounded retries model a reliable-transport layer over a lossy
        link, exactly like the link workload's transfer loop; the wire
        key and IV stream are seeded so retransmissions are
        deterministic.
        """
        matrix = self._data_matrix()
        wire_key = hashlib.sha256(
            b"faults-data-key-" + self.seed.to_bytes(4, "big")
        ).digest()[:16]
        engine = EncryptionEngine(
            wire_key,
            rand=SgxRandom(b"faults-data-" + self.seed.to_bytes(4, "big")),
            observer=m.recorder,
        )
        link = ClusterLink(engine, m.cluster.network, "datastore", "trainer")
        for _ in range(MAX_FETCH_ATTEMPTS):
            try:
                x = link.transfer(matrix.x)
                y = link.transfer(matrix.y)
            except InjectedLinkDrop:
                continue
            return DataMatrix(x, y)
        raise RuntimeError(
            f"dataset fetch failed after {MAX_FETCH_ATTEMPTS} attempts"
        )

    def _boot(self, m: _TrainMachine, violations: List[str]) -> None:
        """One boot: provision key, attach region, train to target."""
        m.cluster.boot()
        m.host.barrier()
        enclave = m.host.spawn_enclave()
        runtime = EnclaveRuntime(enclave)
        runtime.register_ecall(
            "seal_key",
            lambda key: seal_data(enclave, key, m.device_key, m.rand),
        )
        runtime.register_ecall(
            "unseal_key",
            lambda blob: unseal_data(enclave, blob, m.device_key),
        )
        runtime.register_ocall(
            "persist_key",
            lambda payload: (
                m.ssd.write(KEY_FILE, 0, payload),
                m.ssd.fsync(KEY_FILE),
            ),
        )

        # Key provisioning: unseal from SSD if durable, else generate.
        # A crash between write and fsync leaves a truncated file, which
        # the size check treats as absent (regenerate and re-persist).
        min_size = 32 + 16 + 28  # measurement + sealed 16-byte key
        if m.ssd.exists(KEY_FILE) and m.ssd.file_size(KEY_FILE) >= min_size:
            payload = m.ssd.read_all(KEY_FILE)
            blob = SealedBlob(measurement=payload[:32], sealed=payload[32:])
            key = runtime.ecall("unseal_key", blob)
        else:
            key = EncryptionEngine.generate_key(m.rand)
            blob = runtime.ecall("seal_key", key)
            runtime.ocall("persist_key", blob.measurement + blob.sealed)
        engine = EncryptionEngine(key, rand=m.rand, observer=m.recorder)

        # Region attach: open-and-recover when the magic is durable,
        # otherwise (re)format.  Formatting is only legal if no prior
        # format completed (I1: a completed format never loses its magic).
        main_size = (m.pm.size - HEADER_SIZE) // 2
        before = m.recorder.counters.get("romulus.recoveries")
        if m.pm.read(0, 8) == MAGIC:
            region = m.host.open_region()
            err = invariants.recovery_count_delta(
                before, m.recorder.counters.get("romulus.recoveries")
            )
            if err:
                violations.append("I4: " + err)
            err = invariants.region_idle_and_twinned(region)
            if err:
                violations.append("I1: " + err)
        else:
            if m.format_completed:
                violations.append(
                    "I1: a formatted region lost its magic after a crash"
                )
            region = m.host.format_region(main_size)
            m.format_completed = True

        heap = PersistentHeap(region)
        pm_data = PmDataModule(region, heap, engine, enclave, m.profile)
        if pm_data.exists():
            pass  # dataset survived the crash, as it must
        else:
            if m.data_load_completed:
                violations.append(
                    "I6: the loaded training dataset vanished after a crash"
                )
            pm_data.load(self._fetch_dataset(m), encrypted=True)
            m.data_load_completed = True

        mirror = _TrackedMirror(region, heap, engine, enclave, m.profile)
        mirror.machine = m
        if mirror.has_snapshot():
            stored = mirror.stored_iteration()
            if stored < m.last_committed_mirror:
                violations.append(
                    f"I6: mirror regressed to iteration {stored} after a "
                    f"crash (iteration {m.last_committed_mirror} had "
                    "committed)"
                )
        elif m.last_committed_mirror > 0:
            violations.append(
                "I6: a committed mirror vanished after a crash"
            )

        network = self._network()
        trainer = PliniusTrainer(
            network,
            mirror,
            pm_data,
            enclave,
            m.profile,
            m.clock,
            input_shape=(1, 28, 28),
            mirror_every=1,
            batch_seed=2 * self.seed + 1,
        )
        result = trainer.train(self.iterations)
        for it, loss in zip(result.log.iterations, result.log.losses):
            m.losses[it] = loss
        m.final_iteration = result.final_iteration
        m.stored_iteration = mirror.stored_iteration()
        m.params_digest = params_digest(network)


class _LinkMachine:
    """One stage worker plus its secure link (built fault-free).

    The worker lives on host ``w0``; the link's far end is the ``peer``
    host, so the wire is a real cluster edge with the
    ``cluster.partition``/``cluster.deliver`` coordinates on it.
    """

    def __init__(self, batch: int, seed: int, server: str):
        from repro.cluster.worker import ClusterWorker

        profile = get_profile(server)
        self.clock = SimClock()
        self.recorder = TraceRecorder()
        self.clock.recorder = self.recorder
        self.cluster = Cluster(self.clock)
        self.host = self.cluster.add_host("w0", profile)
        self.cluster.add_host("peer", profile)
        self.cluster.connect("w0", "peer")
        job_key = hashlib.sha256(
            b"faults-job-" + seed.to_bytes(4, "big")
        ).digest()[:16]
        def builder():
            net = build_mnist_cnn(
                n_conv_layers=1,
                filters=2,
                batch=batch,
                learning_rate=0.1,
                rng=np.random.default_rng(seed),
            )
            # Momentum off for bit-identical kill/resume (see
            # TrainWorkload._network).
            net.momentum = 0.0
            return net
        self.worker = ClusterWorker(self.host, builder, job_key, seed=seed)
        # A valid mirror exists before any fault can fire, so resume is
        # always well-defined.
        self.worker.mirror_out(0)
        self.link = ClusterLink(
            self.worker.engine, self.cluster.network, "w0", "peer"
        )
        self.committed = 0
        self.integrity_rejections = 0
        self.losses: Dict[int, float] = {}


class LinkWorkload:
    """Distributed stage worker + secure link under fault injection.

    The fault plan is armed only around the steady-state step loop; the
    worker is constructed fault-free so golden hits and replay hits
    line up from the same starting state.  A crash is the worker's host
    dying (enclave destroyed, PM power-failed — also reachable via the
    ``cluster.host_kill`` barrier at each step top); recovery is host
    ``kill()``/``resume()`` — reboot plus Romulus recovery from the
    host's PM — and the step loop re-runs from the mirrored iteration.
    Link faults (drops, flips, partitions) are retried a bounded number
    of times, modelling a reliable-transport layer over a lossy wire.
    """

    name = "link"

    MAX_SEND_ATTEMPTS = 4

    def __init__(
        self,
        server: str = "emlSGX-PM",
        steps: int = 3,
        batch: int = 4,
        seed: int = 99,
    ) -> None:
        self.server = server
        self.steps = steps
        self.batch = batch
        self.seed = seed
        self._golden: Optional[GoldenRun] = None

    # ------------------------------------------------------------------
    def _input(self, step: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, step))
        return rng.random((self.batch, 1, 28, 28), dtype=np.float32)

    def _labels(self, step: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, step, 1))
        y = np.zeros((self.batch, 10), dtype=np.float32)
        y[np.arange(self.batch), rng.integers(0, 10, self.batch)] = 1.0
        return y

    # ------------------------------------------------------------------
    def golden(self) -> GoldenRun:
        if self._golden is None:
            plan = CountingPlan()
            outcome = self._run(plan)
            violations = list(outcome.violations)
            if not outcome.completed:
                violations.append("golden run failed to complete")
            dups = plan.duplicate_ivs()
            if dups:
                violations.append(
                    f"I5: {len(dups)} AES-GCM IVs reused within one boot"
                )
            self._golden = GoldenRun(
                hits=dict(plan.hits),
                losses=dict(outcome.losses),
                final_iteration=outcome.final_iteration,
                stored_iteration=outcome.stored_iteration,
                params_digest=outcome.params_digest,
                violations=violations,
                flight=outcome.flight,
            )
        return self._golden

    def replay(self, spec: FaultSpec) -> ReplayOutcome:
        golden = self.golden()
        plan = CrashSchedulePlan(spec)
        outcome = self._run(plan)
        outcome.spec = spec
        outcome.fired = plan.fired
        v = outcome.violations
        if not plan.fired:
            v.append(
                f"fault {spec.describe()} never fired (golden saw "
                f"{golden.hits.get(spec.site, 0)} hits at this site)"
            )
        if spec.kind == FLIP and plan.fired:
            if outcome.integrity_rejections == 0:
                v.append(
                    "I7: a delivered bit-flip on the wire was accepted "
                    "without an IntegrityError"
                )
        if outcome.completed:
            for step, loss in golden.losses.items():
                if outcome.losses.get(step) != loss:
                    v.append(
                        f"I3: loss at step {step} diverged: golden "
                        f"{loss!r} vs {outcome.losses.get(step)!r}"
                    )
            if outcome.params_digest != golden.params_digest:
                v.append(
                    "I3: final stage parameters diverged from the "
                    "uninterrupted run"
                )
            if outcome.stored_iteration != golden.stored_iteration:
                v.append(
                    f"I6: final mirror stores iteration "
                    f"{outcome.stored_iteration}, expected "
                    f"{golden.stored_iteration}"
                )
        elif not v:
            v.append("run did not complete yet no violation was recorded")
        return outcome

    # ------------------------------------------------------------------
    def _transfer(self, m: _LinkMachine, out, violations) -> Optional[bytes]:
        """Send + receive with bounded retries over a lossy wire."""
        for _ in range(self.MAX_SEND_ATTEMPTS):
            try:
                message = m.link.send_array(out)
            except InjectedLinkDrop:
                continue
            try:
                received = m.link.receive_array(message)
            except InjectedLinkDrop:
                continue
            except IntegrityError:
                m.integrity_rejections += 1
                if m.integrity_rejections > 1:
                    violations.append(
                        "I7: a transient wire flip caused repeated "
                        "integrity failures"
                    )
                    return None
                continue
            if not np.array_equal(received, out):
                violations.append(
                    "I2: the link delivered a tensor different from the "
                    "one sent"
                )
            return received
        violations.append(
            f"link transfer failed after {self.MAX_SEND_ATTEMPTS} attempts"
        )
        return None

    def _run(self, plan: BaseFaultPlan) -> ReplayOutcome:
        machine = _LinkMachine(self.batch, self.seed, self.server)
        outcome = ReplayOutcome()
        v = outcome.violations
        spec = getattr(plan, "spec", None)
        step = 0
        with installed(plan):
            plan.mark_boot()
            while step < self.steps and not v:
                try:
                    machine.host.barrier()
                    x = self._input(step)
                    out = machine.worker.forward(x, train=True)
                    loss, _ = machine.worker.loss_and_backward(
                        self._labels(step)
                    )
                    machine.worker.update()
                    # Record the loss before the commit: if the crash
                    # lands mid-transfer the worker resumes *past* this
                    # step and never recomputes it.
                    machine.losses[step] = loss
                    machine.worker.mirror_out(step + 1)
                    machine.committed = step + 1
                    if self._transfer(machine, out, v) is None:
                        break
                    step += 1
                except InjectedCrash:
                    _note_fault(machine, spec, "crash")
                    plan.disarm()
                    try:
                        machine.worker.kill()
                        resumed = machine.worker.resume()
                    except Exception as exc:  # noqa: BLE001
                        v.append(
                            "I0: recovery after a crash failed with "
                            f"{type(exc).__name__}: {exc}"
                        )
                        break
                    outcome.reboots += 1
                    if resumed < machine.committed:
                        v.append(
                            f"I6: worker resumed at iteration {resumed} "
                            f"but iteration {machine.committed} had "
                            "committed"
                        )
                        break
                    step = resumed
                    machine.committed = resumed
                except InjectedLinkDrop:
                    v.append(
                        "link drop escaped the transfer retry loop"
                    )
                    break
                except IntegrityError as exc:
                    _note_fault(machine, spec, "integrity-rejection")
                    outcome.integrity_rejections += 1
                    expected = (
                        spec is not None
                        and spec.kind == FLIP
                        and outcome.integrity_rejections == 1
                    )
                    if not expected:
                        v.append(
                            f"I2: sealed stage state failed its MAC "
                            f"check: {exc}"
                        )
                        break
                    # fail-stop: crash the worker and resume
                    plan.disarm()
                    try:
                        machine.worker.kill()
                        step = machine.worker.resume()
                    except Exception as exc:  # noqa: BLE001
                        v.append(
                            "I0: recovery after a fail-stop failed with "
                            f"{type(exc).__name__}: {exc}"
                        )
                        break
                    machine.committed = step
                    outcome.reboots += 1
                except Exception as exc:  # noqa: BLE001 — I0 catch-all
                    v.append(
                        f"I0: unexpected {type(exc).__name__} escaped the "
                        f"workload: {exc}"
                    )
                    break
            else:
                outcome.completed = not v
        outcome.integrity_rejections += machine.integrity_rejections
        outcome.losses = dict(machine.losses)
        outcome.final_iteration = step
        if outcome.completed:
            outcome.stored_iteration = machine.worker.mirror.stored_iteration()
            outcome.params_digest = params_digest(machine.worker.network)
        outcome.flight = machine.recorder.flight.snapshot()
        return outcome


class _ServeMachine:
    """Durable state of one serving deployment across replay reboots.

    A cluster of one ``gateway`` host (owning the PM device with the
    Romulus region and the encrypted model mirror) plus the replica
    hosts behind a :class:`~repro.cluster.fabric.ServingFabric`.  PM and
    the sim clock survive a crash; enclaves, the replica pool, the
    gateway, the event loop, and client session state are volatile and
    are rebuilt by every boot.
    """

    def __init__(
        self, pm_size: int, server: str, seed: int, n_replicas: int = 2
    ) -> None:
        self.profile = get_profile(server)
        self.clock = SimClock()
        self.recorder = TraceRecorder()
        self.clock.recorder = self.recorder
        self.cluster = Cluster(self.clock)
        self.host = self.cluster.add_host(
            "gateway", self.profile, pm_size=pm_size
        )
        replica_hosts = []
        for i in range(n_replicas):
            name = f"replica-{i}"
            self.cluster.add_host(name, self.profile)
            replica_hosts.append(name)
        self.fabric = ServingFabric(
            self.cluster, "gateway", tuple(replica_hosts)
        )
        self.pm = self.host.pm
        self.rand = SgxRandom(b"faults-serve-" + seed.to_bytes(4, "big"))
        self.engine_key = hashlib.sha256(
            b"faults-serve-key-" + seed.to_bytes(4, "big")
        ).digest()[:16]
        #: Highest model generation observed committed (I6 floor).
        self.last_committed = 0
        #: Delivered sealed responses, keyed by request index.
        self.answered: Dict[int, bytes] = {}
        #: Generation that served each answered request.
        self.served_generation: Dict[int, int] = {}
        #: Highest generation each replica index has served (monotone).
        self.max_gen_served: Dict[int, int] = {}
        self.gateway = None
        self.label_of: Dict[int, int] = {}
        self.stored_iteration = 0
        self.redispatches = 0

    def power_fail(self) -> None:
        self.cluster.power_fail()


class ServeWorkload:
    """The replicated inference gateway under fault injection.

    The scenario: a mirror holding model generation 1 is committed
    fault-free; the armed phase stands up a 2-replica pool, opens two
    client sessions, streams 8 sealed requests through the gateway, and
    — mid-run — commits generation 2 to the mirror and publishes it, so
    replicas hot-reload between batches.  A ``serve.dispatch`` ABORT, a
    ``cluster.partition`` cut on the dispatch edge, and a
    ``cluster.deliver`` drop of a completion notification are all
    absorbed by the gateway's exactly-once redispatch; every CRASH kind
    (a replica dying, or host death via the per-event
    ``cluster.host_kill`` barrier) is a power failure: the boot loop
    rebuilds the volatile tier from PM, re-establishes the same
    deterministic sessions, and resubmits only the unanswered requests.

    Invariants checked against the golden run: every request is
    answered exactly once; each sealed response is byte-identical to
    the reference sealing under one of the *committed* generations
    (never a torn mix — replica weight digests must match a committed
    generation exactly); per-replica served generations are monotone;
    the mirror never regresses (I6); in-boot IVs stay unique (I5); a
    delivered bit-flip is rejected, fail-stop (I7).
    """

    name = "serve"

    N_REQUESTS = 8
    N_REPLICAS = 2
    N_CLIENTS = 2
    BATCH_MAX = 4
    #: Sim seconds between request arrivals.
    ARRIVAL_GAP = 2e-4
    #: Sim time of the generation-2 commit + publish.
    UPDATE_AT = 5e-4

    def __init__(
        self,
        server: str = "emlSGX-PM",
        pm_size: int = 1 << 20,
        seed: int = 7777,
    ) -> None:
        self.server = server
        self.pm_size = pm_size
        self.seed = seed
        self._golden: Optional[GoldenRun] = None
        self._refs: Optional[Dict[int, Dict[int, bytes]]] = None

    # ------------------------------------------------------------------
    def _network(self, generation: int):
        net = build_mnist_cnn(
            n_conv_layers=1,
            filters=2,
            batch=4,
            learning_rate=0.1,
            rng=np.random.default_rng((self.seed, generation)),
        )
        net.momentum = 0.0
        return net

    def _image(self, index: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, 100 + index))
        return rng.random((1, 1, 28, 28), dtype=np.float32)

    @staticmethod
    def _client_session(index: int) -> int:
        """Request ``index`` rides session ``1 + index % N_CLIENTS``."""
        return 1 + index % ServeWorkload.N_CLIENTS

    # ------------------------------------------------------------------
    def _references(self) -> Dict[int, Dict[int, bytes]]:
        """Per-request sealed reference responses under each generation.

        Session keys are deterministic (both DH sides draw from seeded
        DRNGs), so the exact sealed bytes a replica must produce are
        computable offline for generation 1 and generation 2 weights.
        """
        if self._refs is not None:
            return self._refs
        from repro.sgx.attestation import (
            QuotingEnclave,
            establish_mux_session,
        )

        profile = get_profile(self.server)
        enclave = Enclave(SimClock(), profile.sgx)
        qe = QuotingEnclave(b"serve-platform")
        enclave_side = {}
        for sid in range(1, self.N_CLIENTS + 1):
            _, enclave_session = establish_mux_session(
                enclave,
                qe,
                expected_measurement=enclave.measurement,
                rand_enclave=SgxRandom(
                    b"svc-sess-" + sid.to_bytes(8, "big")
                ),
                rand_owner=SgxRandom(b"client-" + sid.to_bytes(4, "big")),
                session_id=sid,
            )
            enclave_side[sid] = enclave_session
        nets = {1: self._network(1), 2: self._network(2)}
        refs: Dict[int, Dict[int, bytes]] = {}
        for index in range(self.N_REQUESTS):
            sid = self._client_session(index)
            seq = index // self.N_CLIENTS
            refs[index] = {}
            for generation, net in nets.items():
                preds = (
                    net.predict(self._image(index))
                    .argmax(axis=1)
                    .astype(np.int64)
                )
                refs[index][generation] = enclave_side[sid].seal_response(
                    seq, preds.tobytes()
                )
        self._refs = refs
        return refs

    # ------------------------------------------------------------------
    def golden(self) -> GoldenRun:
        if self._golden is None:
            plan = CountingPlan()
            outcome = self._run(plan)
            violations = list(outcome.violations)
            if not outcome.completed:
                violations.append("golden run failed to complete")
            if outcome.reboots:
                violations.append(
                    f"golden run rebooted {outcome.reboots} times"
                )
            dups = plan.duplicate_ivs()
            if dups:
                violations.append(
                    f"I5: {len(dups)} AES-GCM IVs reused within one boot"
                )
            self._golden = GoldenRun(
                hits=dict(plan.hits),
                losses=dict(outcome.losses),
                final_iteration=outcome.final_iteration,
                stored_iteration=outcome.stored_iteration,
                params_digest=outcome.params_digest,
                violations=violations,
                flight=outcome.flight,
            )
        return self._golden

    def replay(self, spec: FaultSpec) -> ReplayOutcome:
        golden = self.golden()
        refs = self._references()
        plan = CrashSchedulePlan(spec)
        outcome = self._run(plan)
        outcome.spec = spec
        outcome.fired = plan.fired
        v = outcome.violations
        if not plan.fired:
            v.append(
                f"fault {spec.describe()} never fired (golden saw "
                f"{golden.hits.get(spec.site, 0)} hits at this site)"
            )
        dups = plan.duplicate_ivs()
        if dups:
            v.append(f"I5: {len(dups)} AES-GCM IVs reused within one boot")
        if spec.kind == FLIP and plan.fired:
            if outcome.integrity_rejections == 0:
                v.append(
                    "I7: a delivered bit-flip in a sealed record was "
                    "accepted without an IntegrityError"
                )
        if outcome.completed:
            answered = outcome.losses  # request index -> response slot
            if outcome.final_iteration != self.N_REQUESTS:
                v.append(
                    f"I3: {outcome.final_iteration} of "
                    f"{self.N_REQUESTS} requests answered"
                )
            for index, sealed in answered.items():
                if sealed not in refs[index].values():
                    v.append(
                        f"I3: response to request {index} matches no "
                        "committed model generation (torn or corrupt "
                        "serving state)"
                    )
            if outcome.stored_iteration != golden.stored_iteration:
                v.append(
                    f"I6: final mirror stores iteration "
                    f"{outcome.stored_iteration}, expected "
                    f"{golden.stored_iteration}"
                )
        elif not v:
            v.append("run did not complete yet no violation was recorded")
        return outcome

    # ------------------------------------------------------------------
    def _run(self, plan: BaseFaultPlan) -> ReplayOutcome:
        machine = _ServeMachine(
            self.pm_size, self.server, self.seed, n_replicas=self.N_REPLICAS
        )
        outcome = ReplayOutcome()
        spec = getattr(plan, "spec", None)
        self._setup(machine)  # fault-free: region + generation-1 mirror
        with installed(plan):
            while True:
                plan.mark_boot()
                try:
                    self._boot(machine, outcome.violations)
                    outcome.completed = not outcome.violations
                    break
                except InjectedCrash:
                    _note_fault(machine, spec, "crash")
                    self._harvest(machine, outcome.violations)
                except InjectedEcallAbort:
                    # An abort the gateway could not absorb: the host
                    # treats it as fatal and power-cycles.
                    _note_fault(machine, spec, "ecall-abort")
                    self._harvest(machine, outcome.violations)
                except InjectedLinkDrop:
                    outcome.violations.append(
                        "link drop escaped into the serve workload"
                    )
                    break
                except IntegrityError as exc:
                    _note_fault(machine, spec, "integrity-rejection")
                    outcome.integrity_rejections += 1
                    expected = (
                        spec is not None
                        and spec.kind == FLIP
                        and outcome.integrity_rejections == 1
                    )
                    if not expected:
                        outcome.violations.append(
                            "I2: sealed data failed its MAC check after "
                            f"a {spec.kind if spec else 'golden'} fault: "
                            f"{exc}"
                        )
                        break
                    # Fail-stop: power-cycle and reboot.
                    self._harvest(machine, outcome.violations)
                except Exception as exc:  # noqa: BLE001 — I0 catch-all
                    outcome.violations.append(
                        f"I0: unexpected {type(exc).__name__} escaped the "
                        f"workload: {exc}"
                    )
                    break
                if outcome.completed or outcome.violations:
                    break
                plan.disarm()
                machine.power_fail()
                outcome.reboots += 1
                if outcome.reboots > MAX_REBOOTS:
                    outcome.violations.append(
                        f"machine failed to recover within {MAX_REBOOTS} "
                        "reboots"
                    )
                    break
        outcome.losses = dict(machine.answered)
        outcome.final_iteration = len(machine.answered)
        outcome.stored_iteration = machine.stored_iteration
        outcome.flight = machine.recorder.flight.snapshot()
        if machine.answered:
            h = hashlib.sha256()
            for index in sorted(machine.answered):
                h.update(machine.answered[index])
            outcome.params_digest = h.hexdigest()
        return outcome

    # ------------------------------------------------------------------
    def _setup(self, m: _ServeMachine) -> None:
        """Fault-free: format the region, commit generation 1."""
        main_size = (m.pm.size - HEADER_SIZE) // 2
        region = m.host.format_region(main_size)
        heap = PersistentHeap(region)
        engine = EncryptionEngine(m.engine_key, rand=m.rand)
        enclave = m.host.spawn_enclave()
        mirror = MirrorModule(region, heap, engine, enclave, m.profile)
        mirror.alloc_mirror_model(self._network(1))
        mirror.mirror_out(self._network(1), 1)
        m.last_committed = 1
        m.stored_iteration = 1

    def _harvest(self, m: _ServeMachine, violations: List[str]) -> None:
        """Fold one boot's delivered responses into the durable record."""
        if m.gateway is None:
            return
        result = m.gateway.result
        for rid, record in result.responses.items():
            index = m.label_of[rid]
            if index in m.answered:
                violations.append(
                    f"request {index} was answered twice (exactly-once "
                    "redispatch violated)"
                )
                continue
            m.answered[index] = record.sealed
            m.served_generation[index] = record.generation
        for batch in result.batches:
            floor = m.max_gen_served.get(batch.replica, 0)
            if batch.generation < floor:
                violations.append(
                    f"replica {batch.replica} served generation "
                    f"{batch.generation} after generation {floor} "
                    "(non-monotone hot reload)"
                )
            m.max_gen_served[batch.replica] = max(floor, batch.generation)
        m.redispatches += result.redispatches
        m.gateway = None

    def _boot(self, m: _ServeMachine, violations: List[str]) -> None:
        """One boot: rebuild the volatile tier, serve what's unanswered."""
        from repro.core.serving import InferenceClient
        from repro.serving import (
            AdmissionPolicy,
            BatchPolicy,
            InferenceGateway,
            ReplicaPool,
        )
        from repro.sgx.attestation import QuotingEnclave

        loop = m.cluster.boot()
        m.host.barrier()
        region = m.host.open_region()
        heap = PersistentHeap(region)
        engine = EncryptionEngine(m.engine_key, rand=m.rand)
        enclave = m.host.spawn_enclave()
        mirror = MirrorModule(region, heap, engine, enclave, m.profile)
        stored = mirror.stored_iteration()
        if stored < m.last_committed:
            violations.append(
                f"I6: mirror regressed to generation {stored} after a "
                f"crash (generation {m.last_committed} had committed)"
            )
            return
        qe = QuotingEnclave(b"serve-platform")
        pool = ReplicaPool(
            mirror,
            qe,
            m.clock,
            m.profile,
            lambda: self._network(1),
            n_replicas=self.N_REPLICAS,
        )
        gateway = InferenceGateway(
            pool,
            m.clock,
            BatchPolicy(max_requests=self.BATCH_MAX, max_delay=1e-3),
            AdmissionPolicy(max_queue_depth=64),
            loop=loop,
            fabric=m.fabric,
        )
        m.gateway = gateway
        m.label_of = {}

        clients = {}
        for sid in range(1, self.N_CLIENTS + 1):
            client = InferenceClient(pool.measurement, seed=sid)
            pool.open_session(client, sid)
            clients[sid] = client

        base = m.clock.now()
        for index in range(self.N_REQUESTS):
            sid = self._client_session(index)
            # Seal every request (fresh clients restart their seq
            # streams, so the bytes are boot-independent) but submit
            # only the ones still unanswered.
            seq, sealed = clients[sid].seal_request_seq(self._image(index))
            if index in m.answered:
                continue
            rid = gateway.submit(
                sid, seq, sealed, 1, at=base + index * self.ARRIVAL_GAP
            )
            m.label_of[rid] = index

        if mirror.stored_iteration() < 2:
            net2 = self._network(2)

            def update() -> None:
                mirror.mirror_out(net2, 2)
                m.last_committed = 2
                pool.publish_generation()

            gateway.schedule_call(base + self.UPDATE_AT, update)
        # A generation-2 mirror that committed before a crash must still
        # be published to the rebuilt pool (spawn already adopted it).

        gateway.run()
        self._harvest(m, violations)
        m.stored_iteration = mirror.stored_iteration()

        # Torn-mix check: every live replica's weights must be exactly
        # one committed generation's weights.
        digests = {
            params_digest(self._network(1)): 1,
            params_digest(self._network(2)): 2,
        }
        for replica in pool.healthy_replicas():
            digest = params_digest(replica.network)
            generation = digests.get(digest)
            if generation is None:
                violations.append(
                    f"replica {replica.index} serves weights matching no "
                    "committed generation (torn reload)"
                )
            elif generation != replica.generation:
                violations.append(
                    f"replica {replica.index} labels its weights "
                    f"generation {replica.generation} but they are "
                    f"generation {generation}'s"
                )


class _FederatedMachine:
    """Durable state of one federation across replay reboots.

    The :class:`~repro.federated.session.FederatedSession` *is* the
    durable half (cluster, PM, seeds, shards); this wrapper adds the
    run-level bookkeeping the invariants compare: what was
    acknowledged, every noted round observation, and the harvested
    integrity-rejection count.
    """

    def __init__(self, config) -> None:
        from repro.federated.session import FederatedSession

        self.session = FederatedSession(config)
        self.clock = self.session.clock
        self.recorder = TraceRecorder()
        self.clock.recorder = self.recorder
        #: Highest round any boot acknowledged (the I8 floor).
        self.acked_round = 0
        #: Noted per-step losses, key = round*1000 + client*100 + step.
        #: Recorded *before* the round's commit (see coordinator
        #: ``on_note``) so a crash between commit and ack loses nothing.
        self.losses: Dict[int, float] = {}
        #: Noted Merkle roots per round.
        self.roots: Dict[int, bytes] = {}
        #: Every exclusion any boot recorded (should stay empty under a
        #: single injected fault — invariant I10).
        self.exclusions: set = set()
        self.format_completed = False
        self.final_round = 0
        self.params_digest = ""
        self.integrity_rejections = 0

    def on_note(self, result) -> None:
        for cid, step_losses in result.losses.items():
            for step, loss in enumerate(step_losses):
                self.losses[result.round_no * 1000 + cid * 100 + step] = loss
        self.roots[result.round_no] = result.root
        self.exclusions.update(result.excluded)

    def on_ack(self, result) -> None:
        self.acked_round = max(self.acked_round, result.round_no)

    def harvest(self) -> None:
        """Fold the (volatile) coordinator's rejection count in."""
        coordinator = self.session.coordinator
        if coordinator is not None:
            self.integrity_rejections += coordinator.integrity_rejections
            coordinator.integrity_rejections = 0
            self.exclusions.update(coordinator.evidence)

    def power_fail(self) -> None:
        self.session.cluster.power_fail()


class FederatedWorkload:
    """Federated secure training under fault injection.

    Three attested clients train two FedAvg rounds against the
    aggregator host; every round's Merkle root + sealed merged
    parameters commit to the aggregator's PM before the round is
    acknowledged.  A crash at any coordinate power-fails the whole
    deployment; the boot loop re-attaches the region (I1/I4), compares
    the durable ledger tip against what was acknowledged (I8), resumes
    from the committed round, and at the end every participant audits
    its inclusion proof for every committed round (I10).  Completed
    replays must match the golden run's per-step losses, per-round
    roots, and merged parameters bit-for-bit (I9), with zero honest
    exclusions.
    """

    name = "federated"

    def __init__(
        self,
        server: str = "emlSGX-PM",
        n_clients: int = 3,
        rounds: int = 2,
        local_steps: int = 2,
        batch: int = 4,
        rows_per_client: int = 8,
        pm_size: int = 1 << 20,
        seed: int = 4242,
    ) -> None:
        from repro.federated.session import FederationConfig

        self.rounds = rounds
        self.config = FederationConfig(
            n_clients=n_clients,
            rounds=rounds,
            local_steps=local_steps,
            batch=batch,
            rows_per_client=rows_per_client,
            server=server,
            pm_size=pm_size,
            seed=seed,
        )
        self._golden: Optional[GoldenRun] = None

    # ------------------------------------------------------------------
    def golden(self) -> GoldenRun:
        if self._golden is None:
            plan = CountingPlan()
            outcome = self._run(plan)
            violations = list(outcome.violations)
            if not outcome.completed:
                violations.append("golden run failed to complete")
            if outcome.reboots:
                violations.append(
                    f"golden run rebooted {outcome.reboots} times"
                )
            dups = plan.duplicate_ivs()
            if dups:
                violations.append(
                    f"I5: {len(dups)} AES-GCM IVs reused within one boot"
                )
            self._golden = GoldenRun(
                hits=dict(plan.hits),
                losses=dict(outcome.losses),
                final_iteration=outcome.final_iteration,
                stored_iteration=outcome.stored_iteration,
                params_digest=outcome.params_digest,
                violations=violations,
                flight=outcome.flight,
            )
        return self._golden

    def replay(self, spec: FaultSpec) -> ReplayOutcome:
        golden = self.golden()
        plan = CrashSchedulePlan(spec)
        outcome = self._run(plan)
        outcome.spec = spec
        outcome.fired = plan.fired
        v = outcome.violations
        if not plan.fired:
            v.append(
                f"fault {spec.describe()} never fired (golden saw "
                f"{golden.hits.get(spec.site, 0)} hits at this site)"
            )
        dups = plan.duplicate_ivs()
        if dups:
            v.append(f"I5: {len(dups)} AES-GCM IVs reused within one boot")
        if spec.kind == FLIP and plan.fired:
            if outcome.integrity_rejections == 0:
                v.append(
                    "I7: a delivered bit-flip in a sealed record was "
                    "accepted without an IntegrityError"
                )
        if outcome.completed:
            err = invariants.losses_equivalent(golden.losses, outcome.losses)
            if err:
                v.append("I9: " + err)
            if outcome.final_iteration != golden.final_iteration:
                v.append(
                    f"I9: finished at committed round "
                    f"{outcome.final_iteration}, golden committed "
                    f"{golden.final_iteration}"
                )
            if outcome.params_digest != golden.params_digest:
                v.append(
                    "I9: merged parameters or round roots diverged from "
                    "the uninterrupted federation"
                )
        elif not v:
            v.append("run did not complete yet no violation was recorded")
        return outcome

    # ------------------------------------------------------------------
    def _run(self, plan: BaseFaultPlan) -> ReplayOutcome:
        machine = _FederatedMachine(self.config)
        machine.session.on_note = machine.on_note
        machine.session.on_ack = machine.on_ack
        outcome = ReplayOutcome()
        spec = getattr(plan, "spec", None)
        with installed(plan):
            while True:
                plan.mark_boot()
                try:
                    self._boot(machine, outcome.violations)
                    machine.harvest()
                    outcome.completed = not outcome.violations
                    break
                except InjectedCrash:
                    _note_fault(machine, spec, "crash")
                    machine.harvest()
                except InjectedEcallAbort:
                    _note_fault(machine, spec, "ecall-abort")
                    machine.harvest()
                except InjectedLinkDrop:
                    outcome.violations.append(
                        "link drop escaped the federation's transport "
                        "retry loops"
                    )
                    break
                except IntegrityError as exc:
                    _note_fault(machine, spec, "integrity-rejection")
                    machine.harvest()
                    machine.integrity_rejections += 1
                    expected = (
                        spec is not None
                        and spec.kind == FLIP
                        and machine.integrity_rejections == 1
                    )
                    if not expected:
                        outcome.violations.append(
                            "I2: sealed data failed its MAC check after "
                            f"a {spec.kind if spec else 'golden'} fault: "
                            f"{exc}"
                        )
                        break
                    # A transient flip is fail-stop: crash and reboot.
                except Exception as exc:  # noqa: BLE001 — I0 catch-all
                    outcome.violations.append(
                        f"I0: unexpected {type(exc).__name__} escaped the "
                        f"workload: {exc}"
                    )
                    break
                if outcome.violations:
                    break
                plan.disarm()
                machine.power_fail()
                outcome.reboots += 1
                if outcome.reboots > MAX_REBOOTS:
                    outcome.violations.append(
                        f"machine failed to recover within {MAX_REBOOTS} "
                        "reboots"
                    )
                    break
        if machine.exclusions:
            marks = sorted(
                (e.round_no, e.client_id, e.reason)
                for e in machine.exclusions
            )
            outcome.violations.append(
                "I10: honest clients were excluded under a single "
                f"injected fault: {marks}"
            )
        outcome.integrity_rejections = machine.integrity_rejections
        outcome.losses = dict(machine.losses)
        outcome.final_iteration = machine.final_round
        outcome.stored_iteration = machine.final_round
        outcome.params_digest = machine.params_digest
        outcome.flight = machine.recorder.flight.snapshot()
        return outcome

    # ------------------------------------------------------------------
    def _boot(self, m: _FederatedMachine, violations: List[str]) -> None:
        """One boot: attach, check I8, resume rounds, audit, finish."""
        session = m.session
        session.cluster.boot()
        session.host.barrier()

        # Region attach with the same I1/I4 discipline as the train
        # workload: recover when the magic is durable, else first-format.
        before = m.recorder.counters.get("romulus.recoveries")
        if session.host.pm.read(0, 8) == MAGIC:
            region = session.host.open_region()
            err = invariants.recovery_count_delta(
                before, m.recorder.counters.get("romulus.recoveries")
            )
            if err:
                violations.append("I4: " + err)
            err = invariants.region_idle_and_twinned(region)
            if err:
                violations.append("I1: " + err)
        else:
            if m.format_completed:
                violations.append(
                    "I1: a formatted region lost its magic after a crash"
                )
            main_size = (session.host.pm.size - HEADER_SIZE) // 2
            region = session.host.format_region(main_size)
            m.format_completed = True

        coordinator = session.boot(region=region)
        committed = coordinator.ledger.committed_round()
        err = invariants.committed_round_monotone(m.acked_round, committed)
        if err:
            violations.append("I8: " + err)
            return

        for round_no in range(committed + 1, self.rounds + 1):
            session.host.barrier()
            # A crash after note-but-before-commit re-runs the round; it
            # must reproduce the exact root the interrupted attempt saw.
            noted_root = m.roots.get(round_no)
            result = coordinator.run_round(round_no)
            if noted_root is not None and noted_root != result.root:
                violations.append(
                    f"I9: round {round_no} re-committed a different "
                    "Merkle root after recovery"
                )

        # Every participant audits its inclusion for every committed
        # round — proofs are rebuilt from the durable leaf blobs, so
        # this also covers rounds committed by earlier boots.
        for round_no in range(1, self.rounds + 1):
            blob_root = coordinator.ledger.root_of(round_no)
            if blob_root is None:
                violations.append(
                    f"I8: round {round_no} missing from the ledger after "
                    "the federation finished"
                )
                continue
            noted = m.roots.get(round_no)
            if noted is not None and noted != blob_root:
                violations.append(
                    f"I9: durable root of round {round_no} differs from "
                    "the root observed at commit time"
                )
            for cid in sorted(session.clients):
                found = coordinator.proof_for(round_no, cid)
                if found is None:
                    violations.append(
                        f"I10: no inclusion proof for client {cid} in "
                        f"committed round {round_no}"
                    )
                    continue
                payload, proof = found
                if not coordinator.audit(round_no, cid, payload, proof):
                    violations.append(
                        f"I10: inclusion proof for client {cid} round "
                        f"{round_no} failed verification against the "
                        "durable root"
                    )

        m.final_round = coordinator.ledger.committed_round()
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(coordinator.params).tobytes())
        for round_no in range(1, m.final_round + 1):
            digest.update(coordinator.ledger.root_of(round_no) or b"")
        m.params_digest = digest.hexdigest()


def make_workload(name: str, **kwargs):
    """Workload factory used by the explorer and the CLI."""
    table = {
        "train": TrainWorkload,
        "link": LinkWorkload,
        "serve": ServeWorkload,
        "federated": FederatedWorkload,
    }
    try:
        return table[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(table)}"
        ) from None
