"""The fault-point registry: every named injection site in the stack.

A *fault point* is a named location in the simulated system where a
:class:`~repro.faults.plan.FaultPlan` may fire.  Sites are threaded
through the hardware devices, the Romulus transaction machinery, the
SGX boundary, the crypto engine, and the distributed layer; the
instrumented module consults ``faultplan.ACTIVE`` at each site, which is
a no-op unless a plan is installed (same null-object discipline as
``repro.obs``).

The registry is the single source of truth for which site names exist
and which fault *kinds* each supports — plans validate their specs
against it at construction time, the schedule explorer derives its
crash matrix from it, and the repo linter (rule FLT001) flags any
``ACTIVE.check("...")`` call whose site literal is not listed here.

Two calling conventions exist, recorded as the site's ``api``:

``check``
    ``ACTIVE.check(site)`` — may raise an injected fault or return a
    torn-write action; the site carries no payload.
``mutate``
    ``ACTIVE.mutate(site, payload)`` — the site hands its payload
    (sealed bytes, an IV) to the plan, which may return a tampered
    replacement or ``None`` for "unchanged".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Fault kinds a site can support.
CRASH = "crash"  #: fail-stop power failure at this point
TORN = "torn"  #: partial persistence of a flush, then a crash
ABORT = "abort"  #: SGX ecall/ocall returns an error to the host
DROP = "drop"  #: the in-flight link message is lost
FLIP = "flip"  #: a single bit of the site's payload is flipped

ALL_KINDS = (CRASH, TORN, ABORT, DROP, FLIP)


@dataclass(frozen=True)
class FaultSite:
    """One named injection point."""

    name: str
    layer: str  #: hw | romulus | sgx | crypto | distributed | serving | cluster | federated
    kinds: Tuple[str, ...]
    api: str  #: "check" or "mutate"
    description: str

    def supports(self, kind: str) -> bool:
        return kind in self.kinds


def _site(name: str, layer: str, kinds: Tuple[str, ...], api: str,
          description: str) -> FaultSite:
    return FaultSite(name, layer, kinds, api, description)


#: The catalog.  Keep `docs/fault-injection.md` in sync when editing.
SITES: Dict[str, FaultSite] = {
    s.name: s
    for s in (
        # ---------------------------------------------------- hardware
        _site("pm.store", "hw", (CRASH,), "check",
              "before a PM store lands in the cache hierarchy"),
        _site("pm.flush", "hw", (CRASH, TORN), "check",
              "before a CLFLUSH/CLFLUSHOPT writes dirty lines back; "
              "TORN persists only a prefix of the dirty lines"),
        _site("pm.fence", "hw", (CRASH,), "check",
              "before an SFENCE orders prior flushes"),
        _site("ssd.write", "hw", (CRASH,), "check",
              "before a buffered SSD write reaches the page cache"),
        _site("ssd.fsync", "hw", (CRASH,), "check",
              "before fsync forces pending bytes to the device"),
        # ----------------------------------------------------- romulus
        _site("romulus.tx.write", "romulus", (CRASH,), "check",
              "at the top of an interposed transactional store"),
        _site("romulus.tx.commit", "romulus", (CRASH,), "check",
              "at commit entry, before fence 2"),
        _site("romulus.tx.commit.pre_idle", "romulus", (CRASH,), "check",
              "after the main->back copy, before IDLE is written"),
        _site("romulus.tx.abort", "romulus", (CRASH,), "check",
              "at abort entry, before main is rolled back"),
        _site("romulus.log.record", "romulus", (CRASH,), "check",
              "before a range is appended to the volatile log"),
        # --------------------------------------------------------- sgx
        _site("sgx.ecall", "sgx", (CRASH, ABORT), "check",
              "on enclave entry, before the transition cost is charged"),
        _site("sgx.ocall", "sgx", (CRASH, ABORT), "check",
              "on enclave exit, before the transition cost is charged"),
        _site("sgx.enclave.touch", "sgx", (CRASH,), "check",
              "before EPC access/paging accounting"),
        _site("sgx.enclave.malloc", "sgx", (CRASH,), "check",
              "before a trusted-heap allocation is ledgered"),
        # ------------------------------------------------------ crypto
        _site("crypto.seal", "crypto", (CRASH,), "mutate",
              "after the IV is drawn, before encryption; the payload is "
              "the IV (plans record it for uniqueness checking)"),
        _site("crypto.unseal", "crypto", (CRASH, FLIP), "mutate",
              "before authenticated decryption; the payload is the "
              "sealed record — FLIP hands back a bit-flipped copy"),
        # ------------------------------------------------- distributed
        _site("link.send", "distributed", (CRASH, DROP), "check",
              "before a sealed tensor message enters the wire"),
        _site("link.recv", "distributed", (CRASH, DROP), "check",
              "before a received message is unsealed"),
        _site("distributed.worker.step", "distributed", (CRASH,), "check",
              "at the top of a stage worker's forward pass"),
        _site("distributed.worker.mirror", "distributed", (CRASH,), "check",
              "before a stage worker persists its mirror"),
        # ----------------------------------------------------- serving
        _site("serve.dispatch", "serving", (CRASH, ABORT), "check",
              "before a coalesced batch enters a replica enclave; "
              "ABORT models a transient ecall failure the gateway "
              "retries, CRASH a replica dying mid-batch"),
        _site("serve.reload", "serving", (CRASH,), "check",
              "between generations during a replica hot-reload, "
              "before mirror_in swaps the served weights"),
        # ----------------------------------------------------- cluster
        _site("cluster.host_kill", "cluster", (CRASH,), "check",
              "host power failure: at a host barrier (boot, step) or "
              "before the substrate event loop handles its next event; "
              "reboot is a fresh enclave + Romulus recovery from that "
              "host's PM"),
        _site("cluster.partition", "cluster", (DROP,), "check",
              "before a message (or a dispatch) enters a network link; "
              "DROP partitions the link — queued messages are held and "
              "delivered only at heal, a dispatch is retried on "
              "another replica"),
        _site("cluster.deliver", "cluster", (CRASH, DROP), "check",
              "at the receiving NIC, after transit cost is paid; DROP "
              "loses the in-flight message (a completion notification "
              "is redispatched), CRASH kills the receiving host"),
        # --------------------------------------------------- federated
        _site("fed.submit", "federated", (CRASH, DROP), "check",
              "before a client's sealed weight delta enters the wire "
              "to the aggregator; DROP loses the submission (the "
              "client's reliable-transport loop retransmits the cached "
              "sealed bytes), CRASH kills the federation mid-round"),
        _site("fed.aggregate", "federated", (CRASH,), "check",
              "after the quorum check, before the accepted deltas are "
              "FedAvg-merged inside the aggregation enclave"),
        _site("fed.commit", "federated", (CRASH,), "check",
              "before the round's Merkle root + sealed merged params "
              "enter their Romulus transaction; a crash here must "
              "leave the previous round as the durable tip"),
    )
}


class UnknownSiteError(KeyError):
    """A fault spec (or instrumented call) names an unregistered site."""


def require_site(name: str) -> FaultSite:
    """Look a site up, raising :class:`UnknownSiteError` if missing."""
    try:
        return SITES[name]
    except KeyError:
        raise UnknownSiteError(
            f"unknown fault site {name!r}; registered sites: "
            f"{', '.join(sorted(SITES))}"
        ) from None


def sites_for_layer(layer: str) -> Tuple[FaultSite, ...]:
    """All registered sites of one layer, in catalog order."""
    return tuple(s for s in SITES.values() if s.layer == layer)


def crashable_sites() -> Tuple[str, ...]:
    """Names of every site that supports the CRASH kind."""
    return tuple(name for name, s in SITES.items() if CRASH in s.kinds)
