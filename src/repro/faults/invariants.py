"""Post-recovery invariant checks for the crash-schedule explorer.

Each check returns ``None`` when the invariant holds and a short
human-readable description of the violation otherwise, so the explorer
can collect findings without raising mid-run.  The catalogue (numbered
for cross-reference with ``docs/fault-injection.md``):

* **I1 — twin consistency.**  After recovery the Romulus region must be
  IDLE with the *main* and *back* twins byte-identical on the durable
  media.  A divergence means a transaction tore: some committed bytes
  never made it into the snapshot (or a torn mutation leaked past
  recovery).
* **I2 — sealed integrity.**  Every sealed record reachable from the
  region (mirror slots, data rows, sealed key file) must MAC-verify.
  The workloads check this implicitly — an ``IntegrityError`` observed
  after a pure power failure is reported as an I2 violation.
* **I3 — computation equivalence.**  A crashed-and-resumed training run
  must reach a final loss bit-identical to the uninterrupted golden run
  and complete the same number of iterations.
* **I4 — single recovery.**  Opening a formatted region after a crash
  must bump the ``romulus.recoveries`` counter exactly once.
* **I5 — IV uniqueness.**  No AES-GCM IV may repeat within one boot
  epoch (reuse breaks GCM confidentiality and authenticity).
* **I6 — durability monotonicity.**  State the workload observed as
  committed (a mirrored iteration, the loaded dataset) must survive
  every subsequent crash; recovery may roll an *open* transaction back
  but never a committed one.
* **I7 — tamper evidence.**  A delivered bit-flip in a sealed record
  must surface as an ``IntegrityError`` (fail-stop), never as silently
  accepted plaintext.
* **I8 — committed-round monotonicity.**  The federated ledger's
  durable tip never regresses, and a round is acknowledged (published
  to clients) only *after* its Merkle root and sealed merged
  parameters committed — on reboot, ``ledger.committed_round()`` must
  be at least the highest round the previous boot acknowledged.  The
  ``fed-commit-before-durable`` mutant inverts the order and this
  check catches it.
* **I9 — round-resume equivalence.**  An aggregator crashed at any
  coordinate and rebooted must resume from the last committed round
  and finish with per-round client losses, Merkle roots, and merged
  parameters bit-identical to the uninterrupted federation.
* **I10 — exclusion evidence.**  A contribution that was tampered
  with, replayed from a prior round, or backed by a forged inclusion
  proof must never reach the FedAvg merge; every exclusion leaves an
  evidence record ``(round, client, reason)``, and under a single
  *injected* fault (not a byzantine client) no honest client may be
  excluded at all.
"""

from __future__ import annotations

from typing import Optional

from repro.romulus.region import RegionState, RomulusRegion


def region_idle_and_twinned(region: RomulusRegion) -> Optional[str]:
    """I1: post-recovery the region is IDLE and the durable twins match."""
    device = region.device
    state = device.durable_read(region.base + 8, 8)
    if int.from_bytes(state, "little") != int(RegionState.IDLE):
        return (
            "region state is "
            f"{RegionState(int.from_bytes(state, 'little')).name} "
            "on durable media after recovery (expected IDLE)"
        )
    main = device.durable_read(region.main_base, region.main_size)
    back = device.durable_read(region.back_base, region.main_size)
    if main != back:
        offset = next(i for i, (a, b) in enumerate(zip(main, back)) if a != b)
        return (
            "durable main/back twins diverge starting at main-relative "
            f"offset {offset} of {region.main_size}"
        )
    return None


def recovery_count_delta(before: int, after: int) -> Optional[str]:
    """I4: exactly one recovery per reboot over a formatted region."""
    delta = after - before
    if delta != 1:
        return (
            f"romulus.recoveries moved by {delta} across one reboot "
            "(expected exactly 1)"
        )
    return None


def losses_equivalent(golden: dict, observed: dict) -> Optional[str]:
    """I3: per-iteration losses are bit-identical to the golden run.

    ``observed`` merges every boot's training log; a recomputed
    iteration (after rollback to the last mirror) must reproduce the
    golden loss exactly — SGD here is fully deterministic.
    """
    if set(golden) != set(observed):
        missing = sorted(set(golden) - set(observed))
        extra = sorted(set(observed) - set(golden))
        return (
            f"iteration coverage differs from golden run "
            f"(missing {missing or 'none'}, extra {extra or 'none'})"
        )
    for iteration in sorted(golden):
        if golden[iteration] != observed[iteration]:
            return (
                f"loss at iteration {iteration} diverged: golden "
                f"{golden[iteration]!r} vs resumed {observed[iteration]!r}"
            )
    return None


def committed_round_monotone(
    acked_round: int, committed_round: int
) -> Optional[str]:
    """I8: nothing acknowledged may be ahead of the durable ledger tip."""
    if committed_round < acked_round:
        return (
            f"round {acked_round} was acknowledged but recovery found "
            f"the durable ledger tip at round {committed_round} "
            "(ack before commit)"
        )
    return None
