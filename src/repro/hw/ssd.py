"""Simulated SSD block device with a volatile write buffer and fsync.

This is the substrate of the paper's baseline: SGX-Darknet checkpointing
via ``ocall``-ed ``fwrite``/``fread`` plus an ``fsync`` after every write
(Section VI, "PM mirroring vs. SSD-based checkpointing").  Data written
but not fsynced sits in the page cache and is lost on :meth:`crash`.
"""

from __future__ import annotations

from typing import Dict

from repro.faults import plan as faultplan
from repro.hw.intervals import IntervalSet
from repro.simtime.clock import SimClock
from repro.simtime.costs import DeviceCostModel


class _File:
    """One file: durable bytes plus not-yet-synced dirty ranges."""

    def __init__(self) -> None:
        self.data = bytearray()
        self.durable = bytearray()
        self.dirty = IntervalSet()


class BlockDevice:
    """A file-oriented SSD simulation.

    Files are named blobs.  Writes land in the (volatile) page cache and
    are cheap; :meth:`fsync` pays the device cost for all pending bytes of
    a file.  Reads always pay device cost (the checkpoint-restore path in
    the paper reads cold data after a crash).
    """

    def __init__(
        self,
        clock: SimClock,
        cost: DeviceCostModel,
        *,
        page_cache_bandwidth: float = 10 * (1 << 30),
    ) -> None:
        self.clock = clock
        self.cost = cost
        self.page_cache_bandwidth = page_cache_bandwidth
        self._files: Dict[str, _File] = {}
        self.crash_count = 0
        self.stats = {"writes": 0, "reads": 0, "fsyncs": 0}

    def _file(self, name: str) -> _File:
        if name not in self._files:
            self._files[name] = _File()
        return self._files[name]

    # ------------------------------------------------------------------
    def exists(self, name: str) -> bool:
        """Whether ``name`` exists (in cache or durably)."""
        return name in self._files

    def file_size(self, name: str) -> int:
        """Current (cached) size of ``name`` in bytes."""
        return len(self._file(name).data) if name in self._files else 0

    def delete(self, name: str) -> None:
        """Remove a file (metadata operation, assumed durable)."""
        self._files.pop(name, None)

    def write(self, name: str, offset: int, data: bytes) -> None:
        """Buffered write: lands in the page cache, volatile until fsync."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("ssd.write")
        if offset < 0:
            raise ValueError(f"negative file offset: {offset}")
        f = self._file(name)
        end = offset + len(data)
        if end > len(f.data):
            f.data.extend(b"\x00" * (end - len(f.data)))
        f.data[offset:end] = data
        f.dirty.add(offset, end)
        self.stats["writes"] += 1
        self.clock.advance(len(data) / self.page_cache_bandwidth)

    def append(self, name: str, data: bytes) -> None:
        """Write at the current end of the file."""
        self.write(name, self.file_size(name), data)

    def fsync(self, name: str) -> int:
        """Force pending bytes of ``name`` to the device; return the count."""
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("ssd.fsync")
        f = self._file(name)
        pending = f.dirty.total
        if len(f.durable) < len(f.data):
            f.durable.extend(b"\x00" * (len(f.data) - len(f.durable)))
        for a, b in f.dirty:
            f.durable[a:b] = f.data[a:b]
        f.dirty.clear()
        self.stats["fsyncs"] += 1
        self.clock.advance(self.cost.fsync_time(pending))
        return pending

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (sees buffered writes)."""
        f = self._file(name)
        if offset < 0 or offset + length > len(f.data):
            raise IndexError(
                f"read [{offset}, {offset + length}) beyond EOF "
                f"({len(f.data)}) of {name!r}"
            )
        self.stats["reads"] += 1
        self.clock.advance(self.cost.read_time(length))
        return bytes(f.data[offset : offset + length])

    def read_all(self, name: str) -> bytes:
        """Read the whole file."""
        return self.read(name, 0, self.file_size(name))

    def crash(self) -> None:
        """Power failure: unsynced writes are lost, files truncate to the
        durable image."""
        for f in self._files.values():
            f.data = bytearray(f.durable)
            f.dirty.clear()
        self.crash_count += 1
