"""Simulated volatile DRAM.

DRAM is where the untrusted runtime stages data (e.g. the volatile data
matrix that ``sgx-darknet-helper`` loads from disk before it is moved to
PM).  Its defining property in the paper's failure model is total loss on
crash — which is why training state kept only in DRAM forces a restart
from scratch (Fig. 9b / Fig. 10c).
"""

from __future__ import annotations

from typing import Dict

from repro.simtime.clock import SimClock
from repro.simtime.costs import DeviceCostModel


class VolatileMemory:
    """Named volatile buffers with DRAM-speed cost accounting."""

    def __init__(self, clock: SimClock, cost: DeviceCostModel) -> None:
        self.clock = clock
        self.cost = cost
        self._buffers: Dict[str, bytearray] = {}
        self.crash_count = 0

    def store(self, name: str, data: bytes) -> None:
        """Store a buffer under ``name`` (replacing any previous value)."""
        self._buffers[name] = bytearray(data)
        self.clock.advance(self.cost.write_time(len(data)))

    def load(self, name: str) -> bytes:
        """Load the buffer stored under ``name``."""
        try:
            data = self._buffers[name]
        except KeyError:
            raise KeyError(f"no volatile buffer named {name!r}") from None
        self.clock.advance(self.cost.read_time(len(data)))
        return bytes(data)

    def exists(self, name: str) -> bool:
        """Whether a buffer named ``name`` is resident."""
        return name in self._buffers

    def discard(self, name: str) -> None:
        """Free a buffer."""
        self._buffers.pop(name, None)

    def crash(self) -> None:
        """Power failure: everything is lost."""
        self._buffers.clear()
        self.crash_count += 1
