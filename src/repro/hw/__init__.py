"""Simulated hardware substrate: persistent memory, SSD, DRAM.

These devices give the reproduction *observable* durability semantics:

* :class:`PersistentMemoryDevice` — byte-addressable persistent memory
  with a volatile CPU-cache overlay.  A store is durable only after the
  cache line holding it has been flushed (CLFLUSH / CLFLUSHOPT / CLWB);
  :meth:`~PersistentMemoryDevice.crash` discards every unflushed store,
  exactly the failure Romulus' twin-copy protocol must tolerate.
* :class:`BlockDevice` — an SSD with a volatile write buffer and fsync,
  used by the disk-checkpointing baseline.
* :class:`VolatileMemory` — DRAM; loses everything on crash.

All operations charge simulated time to a shared :class:`~repro.simtime.SimClock`
via the device cost models in the active :class:`~repro.simtime.ServerProfile`.
"""

from repro.hw.intervals import IntervalSet
from repro.hw.pmem import FlushInstruction, PersistentMemoryDevice
from repro.hw.ssd import BlockDevice
from repro.hw.dram import VolatileMemory
from repro.hw.fio import FioJob, FioResult, run_fio_job

__all__ = [
    "IntervalSet",
    "PersistentMemoryDevice",
    "FlushInstruction",
    "BlockDevice",
    "VolatileMemory",
    "FioJob",
    "FioResult",
    "run_fio_job",
]
