"""FIO-like device characterization (paper Fig. 2).

Reproduces the paper's micro-benchmark: sequential/random read/write
throughput on three file-system configurations —

* ``ssd-ext4``   — native Ext4 over an SSD (syscall + page-cache path),
* ``pm-dax``     — Ext4 with DAX on persistent memory (no page cache),
* ``ramdisk``    — tmpfs over volatile DRAM.

Parameters follow the paper: 512 MB file per thread, 4 KB blocks, sync
I/O engine, and an fsync for every written block; results averaged over
three runs.  Times are computed from the same device cost models the
byte-level simulators charge, so the analytic throughput agrees with an
actual device-driving run (covered by a cross-check test).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.simtime.costs import CACHE_LINE, KIB, MIB, DeviceCostModel
from repro.simtime.profiles import ServerProfile


class FioBackend(enum.Enum):
    """The three storage configurations compared in Fig. 2."""

    SSD_EXT4 = "ssd-ext4"
    PM_DAX = "pm-dax"
    RAMDISK_TMPFS = "ramdisk"


class FioPattern(enum.Enum):
    """Access pattern of a job."""

    SEQUENTIAL = "seq"
    RANDOM = "rand"


class FioOp(enum.Enum):
    """Operation direction of a job."""

    READ = "read"
    WRITE = "write"


#: Per-syscall software overhead of each backend (seconds/operation).
#: DAX bypasses the page cache entirely; tmpfs pays a lighter VFS path
#: than Ext4-over-SSD.
_SYSCALL_OVERHEAD = {
    FioBackend.SSD_EXT4: 2.5e-6,
    FioBackend.PM_DAX: 0.3e-6,
    FioBackend.RAMDISK_TMPFS: 0.2e-6,
}


@dataclass(frozen=True)
class FioJob:
    """One FIO job specification."""

    backend: FioBackend
    pattern: FioPattern
    op: FioOp
    file_size: int = 512 * MIB
    block_size: int = 4 * KIB
    fsync_per_block: bool = True  # paper: "write workloads issue an fsync
    # for each written block"
    runs: int = 3

    @property
    def label(self) -> str:
        """Short label used in result tables, e.g. ``randwrite``."""
        return f"{self.pattern.value}{self.op.value}"


@dataclass(frozen=True)
class FioResult:
    """Throughput measurement for one job."""

    job: FioJob
    seconds: float
    throughput: float  # bytes/second

    @property
    def mib_per_second(self) -> float:
        """Throughput in MiB/s (the unit of the paper's Fig. 2 axis)."""
        return self.throughput / MIB


def _device_for(backend: FioBackend, profile: ServerProfile) -> DeviceCostModel:
    if backend is FioBackend.SSD_EXT4:
        return profile.ssd
    if backend is FioBackend.PM_DAX:
        return profile.pm
    return profile.dram


def _job_seconds(job: FioJob, profile: ServerProfile) -> float:
    device = _device_for(job.backend, profile)
    nops = job.file_size // job.block_size
    syscall = nops * _SYSCALL_OVERHEAD[job.backend]

    if job.op is FioOp.READ:
        transfer = job.file_size / device.read_bandwidth
        # Sequential reads benefit from readahead / prefetch and hide the
        # per-operation device latency; random reads pay it per block.
        latency = nops * device.read_latency if job.pattern is FioPattern.RANDOM else 0.0
        return syscall + transfer + latency

    transfer = job.file_size / device.write_bandwidth
    latency = nops * device.write_latency if job.pattern is FioPattern.RANDOM else 0.0
    barrier = 0.0
    if job.fsync_per_block:
        if job.backend is FioBackend.SSD_EXT4:
            # A real fsync round-trip to the device per block.
            barrier = nops * device.fsync_latency
        elif job.backend is FioBackend.PM_DAX:
            # On DAX, fsync degenerates to flushing the block's cache
            # lines plus a fence.
            lines = job.block_size // CACHE_LINE
            barrier = nops * (
                lines * profile.clflushopt_cost + profile.sfence_cost
            )
        # tmpfs: fsync is a no-op.
    return syscall + transfer + latency + barrier


def run_fio_job(job: FioJob, profile: ServerProfile) -> FioResult:
    """Run one job (averaging ``job.runs`` identical deterministic runs)."""
    total = sum(_job_seconds(job, profile) for _ in range(job.runs))
    seconds = total / job.runs
    return FioResult(job=job, seconds=seconds, throughput=job.file_size / seconds)


def fig2_jobs(**overrides: object) -> List[FioJob]:
    """The full 3 backends x 4 workloads matrix of Fig. 2."""
    jobs = []
    for backend in FioBackend:
        for pattern in FioPattern:
            for op in FioOp:
                jobs.append(FioJob(backend=backend, pattern=pattern, op=op, **overrides))  # type: ignore[arg-type]
    return jobs


def run_fig2(profile: ServerProfile, **overrides: object) -> Dict[str, Dict[str, FioResult]]:
    """Run the Fig. 2 matrix; returns ``{workload: {backend: result}}``."""
    table: Dict[str, Dict[str, FioResult]] = {}
    for job in fig2_jobs(**overrides):
        table.setdefault(job.label, {})[job.backend.value] = run_fio_job(job, profile)
    return table
