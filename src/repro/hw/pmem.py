"""Simulated byte-addressable persistent memory with cache semantics.

The device models the persistence rules of real PM platforms (Section II
of the paper):

* CPU stores land in the (volatile) cache hierarchy.
* CLFLUSH / CLFLUSHOPT / CLWB evict a cache line to the memory
  controller's write-pending queue, which is inside the ADR persistence
  domain — a flushed line survives power failure.
* SFENCE orders stores/flushes; Romulus' correctness depends on it.
* :meth:`PersistentMemoryDevice.crash` models a power failure: every
  store that has not been flushed is discarded.

The simulation keeps two byte images: ``_data`` is the current (cache +
media) view used by reads, ``_durable`` is the media view restored by a
crash.  A coalesced :class:`IntervalSet` records which ranges of ``_data``
are dirty (cached but not yet flushed).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.faults import plan as faultplan
from repro.hw.intervals import IntervalSet
from repro.simtime.clock import SimClock
from repro.simtime.costs import CACHE_LINE, DeviceCostModel

#: fault_hook op name -> fault-point registry site.
_FAULT_SITES = {
    "store": "pm.store",
    "flush": "pm.flush",
    "fence": "pm.fence",
}


class FlushInstruction(enum.Enum):
    """The persistent write-back instructions Romulus can be built on.

    The paper evaluates ``clflush`` (strongly ordered, paired with a NOP
    instead of a fence) and ``clflushopt`` (weakly ordered, requires
    SFENCE); the servers used lack ``clwb`` support, which we include for
    completeness.
    """

    CLFLUSH = "clflush"
    CLFLUSHOPT = "clflushopt"
    CLWB = "clwb"

    @property
    def needs_fence(self) -> bool:
        """Whether the instruction must be ordered by an explicit SFENCE."""
        return self is not FlushInstruction.CLFLUSH


class PersistentMemoryDevice:
    """A simulated PM module (or the Ramdisk emulating one).

    Parameters
    ----------
    size:
        Capacity in bytes.
    clock:
        Shared simulated clock to charge operation costs to.
    cost:
        Device cost model (bandwidths/latencies).
    clflush_cost, clflushopt_cost, sfence_cost, store_cost, load_cost:
        Micro-operation costs used by flush/fence accounting (taken from
        the active :class:`~repro.simtime.ServerProfile`).
    """

    def __init__(
        self,
        size: int,
        clock: SimClock,
        cost: DeviceCostModel,
        *,
        clflush_cost: float = 100e-9,
        clflushopt_cost: float = 25e-9,
        sfence_cost: float = 30e-9,
        store_cost: float = 6e-9,
        load_cost: float = 4e-9,
    ) -> None:
        if size <= 0:
            raise ValueError(f"device size must be positive, got {size}")
        self.size = size
        self.clock = clock
        self.cost = cost
        self.clflush_cost = clflush_cost
        self.clflushopt_cost = clflushopt_cost
        self.sfence_cost = sfence_cost
        self.store_cost = store_cost
        self.load_cost = load_cost
        self._data = bytearray(size)
        self._durable = bytearray(size)
        self._dirty = IntervalSet()
        # Ranges resident in the CPU cache hierarchy: reads of hot data
        # pay cache cost, not PM media latency/bandwidth.  Crashes (and
        # explicit drop_caches) leave the cache cold, which is what makes
        # post-crash restores pay full PM read cost.
        self._hot = IntervalSet()
        self.cache_read_bandwidth = 20 * (1 << 30)
        self.cache_write_bandwidth = 20 * (1 << 30)
        self.crash_count = 0
        self.stats = {
            "stores": 0,
            "loads": 0,
            "flushes": 0,
            "fences": 0,
            # Bytes actually written back to the PM media — the
            # write-amplification numerator (logical bytes / media bytes).
            "media_bytes": 0,
        }
        #: Optional fault-injection hook called before every mutating
        #: operation with its name ("store"/"flush"/"fence").  Crash-point
        #: property tests raise from here to crash mid-protocol.
        self.fault_hook: Optional[Callable[[str], None]] = None

    def _fault(self, op: str):
        if self.fault_hook is not None:
            self.fault_hook(op)
        active = faultplan.ACTIVE
        if active.enabled:
            # repro: noqa[FLT001] -- _FAULT_SITES is a static table of
            # registered literals; tests/test_faults.py pins its values
            # against the registry.
            return active.check(_FAULT_SITES[op])
        return None

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise IndexError(
                f"PM access [{addr}, {addr + length}) out of bounds "
                f"(device size {self.size})"
            )

    def _account_store(self, addr: int, length: int) -> None:
        """Bookkeeping + simulated cost of a store (data already placed)."""
        self._dirty.add(addr, addr + length)
        self._hot.add(addr, addr + length)
        self.stats["stores"] += 1
        self.clock.recorder.count("pm.bytes_written", length)
        # Stores land in the cache hierarchy: cache-speed cost.  The PM
        # media write bandwidth is charged when the lines are flushed.
        self.clock.advance(
            self.store_cost + length / self.cache_write_bandwidth
        )

    def _charge_read(self, addr: int, length: int) -> None:
        """Bookkeeping + simulated cost of a load of ``length`` bytes."""
        self.stats["loads"] += 1
        if length:
            self.clock.recorder.count("pm.bytes_read", length)
        hot = self._hot.overlap_total(addr, addr + length) if length else 0
        cold = length - hot
        cost = self.load_cost + hot / self.cache_read_bandwidth
        if cold > 0:
            cost += self.cost.read_latency + cold / self.cost.read_bandwidth
            self._hot.add(addr, addr + length)
        self.clock.advance(cost)

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` — volatile until flushed."""
        self._fault("store")
        self._check_range(addr, len(data))
        if not data:
            return
        self._data[addr : addr + len(data)] = data
        self._account_store(addr, len(data))

    def write_prefilled(self, addr: int, length: int) -> None:
        """Account for a store whose payload is already in the volatile
        image (placed through :meth:`volatile_view`).

        Identical cost, fault-injection and cache bookkeeping to
        :meth:`write` — only the memcpy is skipped, because the producer
        (e.g. the sealing pipeline) generated the bytes in place.
        """
        self._fault("store")
        self._check_range(addr, length)
        if not length:
            return
        self._account_store(addr, length)

    def volatile_view(self, addr: int, length: int) -> memoryview:
        """Writable view over the *volatile* data image — host staging.

        Carries no simulated cost: durability and store cost are charged
        when the range is committed via :meth:`write_prefilled`.  The
        view aliases live device memory and is invalidated by
        :meth:`crash`; it must not outlive the current operation.
        """
        self._check_range(addr, length)
        return memoryview(self._data)[addr : addr + length]

    def read(self, addr: int, length: int) -> bytes:
        """Load ``length`` bytes from ``addr`` (sees cached stores).

        Cache-hot ranges (recently written or read) cost cache accesses;
        cold ranges pay PM media latency and bandwidth.
        """
        self._check_range(addr, length)
        self._charge_read(addr, length)
        return bytes(memoryview(self._data)[addr : addr + length])

    def read_view(self, addr: int, length: int) -> memoryview:
        """Like :meth:`read`, returning a zero-copy readonly view.

        Simulated cost is identical to :meth:`read`.  The view aliases
        live device memory: it is invalidated by :meth:`crash` and stale
        after any overlapping store — callers consume it immediately.
        """
        self._check_range(addr, length)
        self._charge_read(addr, length)
        return memoryview(self._data)[addr : addr + length].toreadonly()

    def copy_within(self, src: int, dst: int, length: int) -> None:
        """``write(dst, read(src, length))`` without the intermediate
        ``bytes`` — the Romulus twin-copy hot path.

        Charges exactly the read cost then the store cost, with the same
        cache/dirty bookkeeping and fault-injection points.
        """
        self._check_range(src, length)
        self._charge_read(src, length)
        self._fault("store")
        self._check_range(dst, length)
        if not length:
            return
        view = memoryview(self._data)
        if abs(dst - src) < length:  # overlapping: copy via a bounce
            view[dst : dst + length] = bytes(view[src : src + length])
        else:
            view[dst : dst + length] = view[src : src + length]
        self._account_store(dst, length)

    def drop_caches(self) -> None:
        """Evict the (simulated) CPU cache: subsequent reads are cold.

        Benchmarks call this between a save and a restore measurement so
        the restore pays true PM read cost, as it would after a reboot.
        """
        self._hot.clear()

    # ------------------------------------------------------------------
    # Persistence path
    # ------------------------------------------------------------------
    def flush(
        self,
        addr: int,
        length: int,
        instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT,
    ) -> int:
        """Flush the cache lines covering ``[addr, addr+length)``.

        Returns the number of dirty cache lines that were actually
        written back.  Clean lines still pay the flush-instruction cost
        (as on real hardware for CLFLUSH/CLFLUSHOPT, which evict
        unconditionally).
        """
        torn = self._fault("flush")
        self._check_range(addr, length)
        if length == 0:
            return 0
        line_start = (addr // CACHE_LINE) * CACHE_LINE
        line_end = -(-(addr + length) // CACHE_LINE) * CACHE_LINE
        line_end = min(line_end, self.size)
        nlines = (line_end - line_start) // CACHE_LINE

        dirty_bytes = self._dirty.overlap_total(line_start, line_end)
        data_view = memoryview(self._data)
        if torn is not None:
            self._torn_flush(line_start, line_end, dirty_bytes, torn)
        for a, b in self._dirty.overlap(line_start, line_end):
            self._durable[a:b] = data_view[a:b]
        self._dirty.remove(line_start, line_end)

        per_line = (
            self.clflush_cost
            if instruction is FlushInstruction.CLFLUSH
            else self.clflushopt_cost
        )
        self.stats["flushes"] += nlines
        self.stats["media_bytes"] += dirty_bytes
        recorder = self.clock.recorder
        recorder.count("pm.flushes", nlines)
        if dirty_bytes:
            recorder.count("pm.bytes_flushed", dirty_bytes)
        # Per-line instruction cost plus the media write for dirty bytes.
        self.clock.advance(
            nlines * per_line + dirty_bytes / self.cost.write_bandwidth
        )
        dirty_lines = -(-dirty_bytes // CACHE_LINE) if dirty_bytes else 0
        return dirty_lines

    def _torn_flush(self, line_start: int, line_end: int,
                    dirty_bytes: int, torn) -> None:
        """Persist only a prefix of the dirty lines, then power-fail.

        Tearing is cache-line granular: a line either reaches the media
        whole or not at all (real ADR platforms guarantee 8-byte store
        atomicity; modelling sub-line tears would be unsound, since the
        protocol's u64 header words never straddle a line).  Always
        raises via ``torn.crash()``.
        """
        budget = int(dirty_bytes * torn.fraction)
        persisted = 0
        data_view = memoryview(self._data)
        for a, b in self._dirty.overlap(line_start, line_end):
            pos = a
            while pos < b:
                nxt = min(b, (pos // CACHE_LINE + 1) * CACHE_LINE)
                if persisted + (nxt - pos) > budget:
                    torn.crash()
                self._durable[pos:nxt] = data_view[pos:nxt]
                persisted += nxt - pos
                pos = nxt
        torn.crash()

    def fence(self) -> None:
        """SFENCE: order preceding flushes (cost only; flushes here are
        already modelled as immediately reaching the ADR domain)."""
        self._fault("fence")
        self.stats["fences"] += 1
        self.clock.recorder.count("pm.fences")
        self.clock.advance(self.sfence_cost)

    def persist(
        self,
        addr: int,
        length: int,
        instruction: FlushInstruction = FlushInstruction.CLFLUSHOPT,
    ) -> None:
        """Flush + (fence if the instruction requires it) — a full PWB."""
        self.flush(addr, length, instruction)
        if instruction.needs_fence:
            self.fence()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure: discard every store not yet flushed."""
        self._data[:] = self._durable
        self._dirty.clear()
        self._hot.clear()
        self.crash_count += 1

    @property
    def dirty_bytes(self) -> int:
        """Bytes currently at risk (stored but not flushed)."""
        return self._dirty.total

    def durable_read(self, addr: int, length: int) -> bytes:
        """Read the media view (what a crash would preserve).

        Test/diagnostic API — real software cannot observe this
        distinction without actually crashing.
        """
        self._check_range(addr, length)
        return bytes(self._durable[addr : addr + length])

    def snapshot(self) -> Optional[bytes]:
        """Durable image of the whole device (for spot-simulator hand-off)."""
        return bytes(self._durable)

    def load_image(self, image: bytes) -> None:
        """Overwrite the device with a previously captured image.

        This models the *replay attack* the threat model's privileged
        adversary can mount on any persistent medium: present an old but
        internally consistent PM state.  Rollback protection
        (:mod:`repro.core.freshness`) exists to defeat exactly this.
        """
        if len(image) != self.size:
            raise ValueError(
                f"image is {len(image)} bytes, device is {self.size}"
            )
        self._durable[:] = image
        self._data[:] = image
        self._dirty.clear()
        self._hot.clear()
