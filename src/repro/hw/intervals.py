"""Coalesced sets of half-open integer intervals.

Dirty-range tracking for the simulated persistent memory device.  Tracking
dirtiness at range granularity (instead of per cache line) keeps the cost
of simulating a multi-megabyte ``memcpy`` proportional to the number of
*distinct* writes, not the number of lines touched.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple

Interval = Tuple[int, int]


class IntervalSet:
    """A set of non-overlapping, non-adjacent half-open intervals ``[a, b)``.

    Maintains the invariant that intervals are sorted and coalesced:
    adding ``[0, 5)`` then ``[5, 9)`` stores a single ``[0, 9)``.
    """

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        return iter(zip(self._starts, self._ends))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"[{a},{b})" for a, b in self)
        return f"IntervalSet({spans})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    @property
    def total(self) -> int:
        """Total number of integers covered."""
        return sum(b - a for a, b in self)

    def clear(self) -> None:
        """Remove every interval."""
        self._starts.clear()
        self._ends.clear()

    def copy(self) -> "IntervalSet":
        """Return an independent copy."""
        out = IntervalSet()
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        return out

    def add(self, start: int, end: int) -> None:
        """Add the half-open interval ``[start, end)``, coalescing."""
        if start >= end:
            return
        # Find the window of existing intervals that touch or overlap
        # [start, end).  An interval [a, b) touches iff a <= end and
        # b >= start.
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def remove(self, start: int, end: int) -> None:
        """Remove ``[start, end)`` from the covered set."""
        if start >= end:
            return
        # Window of intervals with strict overlap: a < end and b > start.
        lo = bisect.bisect_right(self._ends, start)
        hi = bisect.bisect_left(self._starts, end)
        if lo >= hi:
            return
        replacement_starts: List[int] = []
        replacement_ends: List[int] = []
        if self._starts[lo] < start:
            replacement_starts.append(self._starts[lo])
            replacement_ends.append(start)
        if self._ends[hi - 1] > end:
            replacement_starts.append(end)
            replacement_ends.append(self._ends[hi - 1])
        self._starts[lo:hi] = replacement_starts
        self._ends[lo:hi] = replacement_ends

    def contains(self, point: int) -> bool:
        """Whether ``point`` is covered by any interval."""
        idx = bisect.bisect_right(self._starts, point) - 1
        return idx >= 0 and point < self._ends[idx]

    def overlap(self, start: int, end: int) -> List[Interval]:
        """Intervals of the intersection with ``[start, end)``."""
        if start >= end:
            return []
        lo = bisect.bisect_right(self._ends, start)
        hi = bisect.bisect_left(self._starts, end)
        out: List[Interval] = []
        for i in range(lo, hi):
            a = max(self._starts[i], start)
            b = min(self._ends[i], end)
            if a < b:
                out.append((a, b))
        return out

    def overlap_total(self, start: int, end: int) -> int:
        """Number of covered integers within ``[start, end)``."""
        return sum(b - a for a, b in self.overlap(start, end))
