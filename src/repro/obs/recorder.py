"""Hierarchical dual-clock tracing — the span half of ``repro.obs``.

Every span records **two** clocks:

* *simulated seconds* — read from the deterministic
  :class:`~repro.simtime.clock.SimClock` by the call site; two same-seed
  runs produce byte-identical sim-time fields (:meth:`TraceRecorder.sim_view`
  is the canonical deterministic projection);
* *wall-clock seconds* — ``time.perf_counter`` relative to recorder
  creation; host-dependent, used to validate real-time optimizations
  (the parallel sealing pipeline, zero-copy PM writes).

Spans nest: each thread keeps its own open-span stack, so a
``mirror.encrypt`` span opened inside ``mirror.out`` becomes its child
automatically.  Work fanned across the crypto pool records one span per
job with an explicit ``parent`` (the enclosing main-thread phase) and a
*simulated worker lane*, making the ``crypto_threads`` pipeline visible
in a Chrome trace while keeping sim-time fields deterministic.

The module-level default recorder is :data:`NULL_RECORDER`, whose every
method is an allocation-free no-op — instrumentation hooks on hot paths
(PM stores, EPC touches, ecalls) stay effectively free when tracing is
off.  Call sites that would allocate argument dicts guard on
``recorder.enabled`` first.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRing
from repro.obs.metrics import CounterRegistry

__all__ = [
    "Span",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_default_recorder",
    "install_default_recorder",
]

_UNSET = object()


class Span:
    """One completed (or in-flight) measurement of a named region."""

    __slots__ = (
        "name",
        "category",
        "index",
        "parent_index",
        "thread_id",
        "sim_lane",
        "trace_id",
        "sim_start",
        "sim_end",
        "wall_start",
        "wall_end",
        "args",
        "_closed",
    )

    def __init__(
        self,
        name: str,
        category: str,
        index: int,
        parent_index: Optional[int],
        thread_id: int,
        sim_start: float,
        wall_start: float,
        args: Optional[Dict[str, Any]],
        sim_lane: Optional[int] = None,
        trace_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.index = index
        self.parent_index = parent_index
        self.thread_id = thread_id
        self.sim_lane = sim_lane
        #: Request-scoped causal-tree id (``obs.context.trace_id_of``);
        #: ``None`` for spans outside the request plane.
        self.trace_id = trace_id
        self.sim_start = sim_start
        self.sim_end = sim_start
        self.wall_start = wall_start
        self.wall_end = wall_start
        self.args = args
        self._closed = False

    @property
    def sim_elapsed(self) -> float:
        """Simulated seconds spent inside the span."""
        return self.sim_end - self.sim_start

    @property
    def wall_elapsed(self) -> float:
        """Wall-clock seconds spent inside the span (host-dependent)."""
        return self.wall_end - self.wall_start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, sim={self.sim_elapsed:.9f}s, "
            f"wall={self.wall_elapsed:.6f}s)"
        )


class _SpanContext:
    """Context manager pairing :meth:`TraceRecorder.begin`/``end``."""

    __slots__ = ("_recorder", "_clock", "_name", "_category", "_args", "_span")

    def __init__(self, recorder, clock, name, category, args) -> None:
        self._recorder = recorder
        self._clock = clock
        self._name = name
        self._category = category
        self._args = args
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._recorder.begin(
            self._name,
            self._clock.now(),
            category=self._category,
            args=self._args,
        )
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._recorder.end(self._span, self._clock.now())


class _NullContext:
    """Reusable no-op context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled recorder: every operation is an allocation-free no-op.

    Shared as the module singleton :data:`NULL_RECORDER`; components
    reach it through ``clock.recorder`` by default, so the untraced hot
    paths pay one attribute lookup and an empty method call.
    """

    enabled = False

    def begin(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, *args: Any, **kwargs: Any) -> None:
        return None

    def span(self, *args: Any, **kwargs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def complete(self, *args: Any, **kwargs: Any) -> None:
        return None

    def instant(self, *args: Any, **kwargs: Any) -> None:
        return None

    def count(self, name: str, value: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def current_span(self) -> None:
        return None

    def wall_now(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects hierarchical dual-clock spans, instant events and counters.

    One recorder may observe several :class:`~repro.simtime.clock.SimClock`
    instances (a Fig. 7 sweep creates one system per model size): spans
    carry the sim timestamps their call site read from *its* clock, and
    the recorder itself is clock-agnostic.
    """

    enabled = True

    def __init__(self, flight_capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self.counters = CounterRegistry()
        #: Bounded tail of recent telemetry — the crash flight recorder
        #: the fault explorer dumps alongside invariant violations.
        self.flight = FlightRing(flight_capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_index = 0
        self._thread_ids: Dict[int, int] = {}
        self._wall_origin = time.perf_counter()
        self._thread_id()  # the creating thread is tid 0

    # ------------------------------------------------------------------
    # Clocks and identity
    # ------------------------------------------------------------------
    def wall_now(self) -> float:
        """Wall-clock seconds since the recorder was created."""
        return time.perf_counter() - self._wall_origin

    def _thread_id(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._thread_ids.get(ident)
            if tid is None:
                tid = len(self._thread_ids)
                self._thread_ids[ident] = tid
            return tid

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _alloc_index(self) -> int:
        with self._lock:
            index = self._next_index
            self._next_index += 1
            return index

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        sim_now: float,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
        parent: Any = _UNSET,
        trace_id: Optional[int] = None,
    ) -> Span:
        """Open a span at simulated time ``sim_now``.

        Without an explicit ``parent`` the span nests under the calling
        thread's innermost open span (if any) and is pushed onto that
        thread's stack; an explicit parent (cross-thread fan-out) skips
        the stack entirely.
        """
        stacked = parent is _UNSET
        if stacked:
            stack = self._stack()
            parent_index = stack[-1].index if stack else None
        else:
            parent_index = parent.index if parent is not None else None
        span = Span(
            name=name,
            category=category,
            index=self._alloc_index(),
            parent_index=parent_index,
            thread_id=self._thread_id(),
            sim_start=sim_now,
            wall_start=self.wall_now(),
            args=args,
            trace_id=trace_id,
        )
        if stacked:
            self._stack().append(span)
        return span

    def end(self, span: Span, sim_now: float) -> Span:
        """Close ``span`` at simulated time ``sim_now`` and record it."""
        if span._closed:
            raise RuntimeError(f"span {span.name!r} ended twice")
        span.sim_end = sim_now
        span.wall_end = self.wall_now()
        span._closed = True
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.spans.append(span)
            self.flight.add("span", span.name, sim_now)
        return span

    def span(
        self,
        name: str,
        clock: Any,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> _SpanContext:
        """Context manager reading sim time from ``clock`` at entry/exit."""
        return _SpanContext(self, clock, name, category, args)

    def complete(
        self,
        name: str,
        sim_start: float,
        sim_end: float,
        wall_start: float,
        wall_end: float,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
        parent: Optional[Span] = None,
        sim_lane: Optional[int] = None,
        trace_id: Optional[int] = None,
    ) -> Span:
        """Record an already-measured span in one call.

        Used by pool workers: the caller supplies both clock intervals
        (sim times from the deterministic schedule, wall times from
        ``wall_now()`` around the actual work) plus the simulated worker
        lane the job was assigned to.
        """
        span = Span(
            name=name,
            category=category,
            index=self._alloc_index(),
            parent_index=parent.index if parent is not None else None,
            thread_id=self._thread_id(),
            sim_start=sim_start,
            wall_start=wall_start,
            args=args,
            sim_lane=sim_lane,
            trace_id=trace_id,
        )
        span.sim_end = sim_end
        span.wall_end = wall_end
        span._closed = True
        with self._lock:
            self.spans.append(span)
            self.flight.add("span", span.name, sim_end)
        return span

    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Instant events and metrics
    # ------------------------------------------------------------------
    def instant(
        self,
        name: str,
        sim_now: float,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
        wall_time: Optional[float] = None,
    ) -> None:
        """Record a point-in-time event (e.g. ``romulus.recover``).

        ``wall_time`` pins the host timestamp explicitly; tests that
        assert byte-identical exports across two recorders use it to
        remove the one nondeterministic field.
        """
        event = {
            "name": name,
            "category": category,
            "sim_time": sim_now,
            "wall_time": self.wall_now() if wall_time is None else wall_time,
            "thread_id": self._thread_id(),
            "args": args or {},
        }
        with self._lock:
            self.events.append(event)
            self.flight.add("instant", name, sim_now)

    def count(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters.add(name, value)
        with self._lock:
            self.flight.add("count", name, value)

    def gauge(self, name: str, value: float) -> None:
        """Record the latest sample of gauge ``name``."""
        self.counters.set_gauge(name, value)
        with self._lock:
            self.flight.add("gauge", name, value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the log2-bucket histogram ``name``."""
        self.counters.observe(name, value)
        with self._lock:
            self.flight.add("observe", name, value)

    # ------------------------------------------------------------------
    # Deterministic projections
    # ------------------------------------------------------------------
    def sim_view(self) -> List[Dict[str, Any]]:
        """Canonical sim-time-only projection of all completed spans.

        Excludes every host-dependent field (wall times, OS thread ids,
        completion order) and sorts deterministically, so two same-seed
        runs yield equal lists — the trace-determinism contract tested
        by ``tests/test_obs_integration.py``.
        """
        with self._lock:
            spans = list(self.spans)
        view = [
            {
                "name": s.name,
                "category": s.category,
                "sim_start": s.sim_start,
                "sim_end": s.sim_end,
                "sim_lane": s.sim_lane,
                "trace_id": s.trace_id,
                "args": dict(sorted((s.args or {}).items())),
            }
            for s in spans
        ]
        view.sort(
            key=lambda d: (
                d["sim_start"],
                d["sim_end"],
                d["name"],
                repr(d["args"]),
            )
        )
        return view

    def sim_events(self) -> List[Dict[str, Any]]:
        """Deterministic projection of instant events (sim fields only)."""
        with self._lock:
            events = list(self.events)
        view = [
            {
                "name": e["name"],
                "category": e["category"],
                "sim_time": e["sim_time"],
                "args": dict(sorted(e["args"].items())),
            }
            for e in events
        ]
        view.sort(key=lambda d: (d["sim_time"], d["name"], repr(d["args"])))
        return view

    def find_spans(self, name: str) -> List[Span]:
        """All completed spans named ``name`` (completion order)."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def find_events(self, name: str) -> List[Dict[str, Any]]:
        """All instant events named ``name``."""
        with self._lock:
            return [e for e in self.events if e["name"] == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder({len(self.spans)} spans, "
            f"{len(self.events)} events, {len(self.counters)} metrics)"
        )


# ----------------------------------------------------------------------
# Module-level default (what a fresh SimClock attaches to)
# ----------------------------------------------------------------------
_default_recorder: Any = NULL_RECORDER
_default_lock = threading.Lock()


def get_default_recorder() -> Any:
    """The recorder newly created clocks/systems attach to.

    :data:`NULL_RECORDER` unless a caller (the ``--trace`` CLI flag, a
    test fixture) installed a real one.
    """
    return _default_recorder


def install_default_recorder(recorder: Any) -> Any:
    """Install ``recorder`` as the process default; returns the previous
    one so callers can restore it (``try/finally``)."""
    global _default_recorder
    with _default_lock:
        previous = _default_recorder
        _default_recorder = recorder if recorder is not None else NULL_RECORDER
        return previous
