"""The crash flight recorder: a bounded, always-on telemetry ring.

Crash diagnosis used to require rerunning a failing schedule under
``--trace``.  The flight recorder removes that round trip: a fixed-size
ring buffer retains the *last N* telemetry events (span completions,
instants, counter bumps, gauge samples, histogram observations), cheap
enough to leave on in production — the wall-clock harness gates its
overhead on the mirror hot path at the same ≤0.5% budget as the null
recorder.

Two deployment shapes share the ring:

* :class:`FlightRecorder` — a drop-in for :data:`~repro.obs.recorder.NULL_RECORDER`
  with ``enabled = False``: call sites still skip every argument-dict
  and span allocation (the ``if recorder.enabled:`` guards hold), but
  the unguarded hot-path hooks — counter bumps from PM/SGX/crypto,
  instants, gauges — append one preallocated-slot tuple each.  This is
  the "always on" production default.
* :class:`~repro.obs.recorder.TraceRecorder` embeds a ring too (fed
  from its span/instant/counter paths), so the fault workloads — which
  run full trace recorders — carry a span-inclusive tail that
  :mod:`repro.faults.explorer` dumps as a JSON artifact whenever an
  invariant is violated.

Ring events are ``(kind, name, value)`` tuples where ``value`` is a
simulated timestamp for spans/instants/faults and the increment/sample
for count/gauge/observe events — all deterministic, so flight dumps of
same-seed runs are byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FlightRing", "FlightRecorder", "DEFAULT_FLIGHT_CAPACITY"]

#: Default ring depth: enough tail to cover several batches / train
#: iterations while keeping violation dumps small.
DEFAULT_FLIGHT_CAPACITY = 256

_Event = Tuple[str, str, float]


class FlightRing:
    """Fixed-capacity ring of ``(kind, name, value)`` telemetry events."""

    __slots__ = ("capacity", "_slots", "_cursor", "total")

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flight ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: List[Optional[_Event]] = [None] * capacity
        self._cursor = 0
        #: Total events ever offered (``total - capacity`` were dropped).
        self.total = 0

    def add(self, kind: str, name: str, value: float) -> None:
        """Append one event, evicting the oldest when full."""
        self._slots[self._cursor] = (kind, name, value)
        self._cursor = (self._cursor + 1) % self.capacity
        self.total += 1

    @property
    def dropped(self) -> int:
        """Events evicted by wraparound."""
        return max(0, self.total - self.capacity)

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def tail(self) -> List[_Event]:
        """Retained events, oldest first."""
        if self.total < self.capacity:
            return [e for e in self._slots[: self._cursor] if e is not None]
        ordered = self._slots[self._cursor :] + self._slots[: self._cursor]
        return [e for e in ordered if e is not None]

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-ready dump of the ring state."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": [
                {"kind": kind, "name": name, "value": value}
                for kind, name, value in self.tail()
            ],
            "total": self.total,
        }

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._cursor = 0
        self.total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightRing({len(self)}/{self.capacity}, total={self.total})"


class FlightRecorder:
    """Always-on bounded recorder: the null recorder plus a flight ring.

    ``enabled`` stays ``False`` so every ``if recorder.enabled:`` guard
    keeps the expensive span/argument machinery off; only the cheap
    unguarded hooks (counters, gauges, instants, observations) feed the
    ring.  Safe to install as the process default or a clock's recorder
    in production: memory is bounded by the ring capacity and the
    wall-clock regression gate holds its mirror-hot-path overhead
    within the 0.5% null-recorder budget.
    """

    enabled = False

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        self.flight = FlightRing(capacity)

    # -- span API (no-ops: callers guard span work on ``enabled``) -----
    def begin(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, *args: Any, **kwargs: Any) -> None:
        return None

    def span(self, *args: Any, **kwargs: Any) -> Any:
        from repro.obs.recorder import _NULL_CONTEXT

        return _NULL_CONTEXT

    def complete(self, *args: Any, **kwargs: Any) -> None:
        return None

    def current_span(self) -> None:
        return None

    def wall_now(self) -> float:
        return 0.0

    # -- unguarded hot-path hooks: feed the ring -----------------------
    def instant(
        self,
        name: str,
        sim_now: float,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.flight.add("instant", name, sim_now)

    def count(self, name: str, value: float = 1) -> None:
        self.flight.add("count", name, value)

    def gauge(self, name: str, value: float) -> None:
        self.flight.add("gauge", name, value)

    def observe(self, name: str, value: float) -> None:
        self.flight.add("observe", name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightRecorder({self.flight!r})"
