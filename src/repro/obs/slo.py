"""Declarative SLO monitoring with multi-window burn-rate alerts.

An :class:`SloObjective` states a service-level objective over the
serving tier in the paper-style measurable form — "p99 end-to-end
latency ≤ D seconds", "error (rejection) rate ≤ r of requests" — and
the :class:`SloMonitor` evaluates it continuously on **simulated
time**: every sample carries the gateway's `SimClock` timestamp, so the
same seed produces the identical alert sequence on any host.

Alerting follows the SRE multi-window burn-rate pattern: an objective
fires only when *both* a long window and a short window burn error
budget faster than ``burn_threshold`` — the long window proves the
breach is sustained (no flapping on one slow request), the short
window proves it is still happening (alerts clear quickly once the
system recovers).  For latency objectives the "bad event" is a request
whose end-to-end latency exceeds the threshold; for error-rate
objectives it is a rejected/failed request.

Alerts are emitted into the trace as deterministic instant events
(``slo.alert`` / ``slo.resolve``, pinned ``wall_time=sim`` so exports
stay byte-identical) plus an ``slo.alerts`` counter, which is how they
reach the flight recorder, the Chrome trace, and ``repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SloObjective", "SloMonitor", "latency_slo", "error_rate_slo"]


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective evaluated over sliding sim-time windows.

    ``budget`` is the tolerated bad-event fraction (e.g. ``0.01`` allows
    1% of requests to miss the latency target, or a 1% error rate).
    The burn rate of a window is ``bad_fraction / budget``; both the
    ``window``-long and the ``short_window``-long burn rates must reach
    ``burn_threshold`` for the objective to be breaching.
    """

    name: str
    kind: str  # "latency" | "error_rate"
    threshold: float = 0.0  # seconds (latency objectives only)
    budget: float = 0.01
    window: float = 1e-2  # long window, simulated seconds
    short_window: float = 1e-3
    burn_threshold: float = 1.0
    min_events: int = 4  # don't evaluate windows thinner than this

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.threshold <= 0:
            raise ValueError("latency objectives need a positive threshold")
        if not 0.0 < self.budget < 1.0:
            raise ValueError(f"budget must be in (0, 1), got {self.budget}")
        if self.short_window > self.window:
            raise ValueError("short_window must not exceed window")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")

    def is_bad(self, latency: float, ok: bool) -> bool:
        """Does one ``(latency, ok)`` sample consume error budget?"""
        if self.kind == "latency":
            return ok and latency > self.threshold
        return not ok


def latency_slo(
    name: str,
    threshold: float,
    budget: float = 0.01,
    window: float = 1e-2,
    short_window: float = 1e-3,
    burn_threshold: float = 1.0,
) -> SloObjective:
    """Shorthand: "all but ``budget`` of requests finish ≤ ``threshold`` s"."""
    return SloObjective(
        name=name,
        kind="latency",
        threshold=threshold,
        budget=budget,
        window=window,
        short_window=short_window,
        burn_threshold=burn_threshold,
    )


def error_rate_slo(
    name: str,
    budget: float = 0.01,
    window: float = 1e-2,
    short_window: float = 1e-3,
    burn_threshold: float = 1.0,
) -> SloObjective:
    """Shorthand: "at most ``budget`` of requests are rejected/failed"."""
    return SloObjective(
        name=name,
        kind="error_rate",
        budget=budget,
        window=window,
        short_window=short_window,
        burn_threshold=burn_threshold,
    )


class SloMonitor:
    """Evaluates objectives over a sliding sample window on sim time."""

    def __init__(self, objectives: List[SloObjective], recorder: Any) -> None:
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.objectives = list(objectives)
        self.recorder = recorder
        #: ``(sim_time, latency, ok)`` samples, arrival order == time order.
        self._samples: List[Tuple[float, float, bool]] = []
        self._breaching: Dict[str, bool] = {o.name: False for o in objectives}
        #: Every alert/resolve transition: ``(sim_time, name, breaching)``.
        self.transitions: List[Tuple[float, str, bool]] = []

    # ------------------------------------------------------------------
    def record(self, now: float, latency: float, ok: bool = True) -> None:
        """Feed one request outcome and re-evaluate every objective."""
        self._samples.append((now, latency, ok))
        horizon = now - max(o.window for o in self.objectives)
        # Sim time is monotone, so pruning from the front is exact.
        drop = 0
        while drop < len(self._samples) and self._samples[drop][0] < horizon:
            drop += 1
        if drop:
            del self._samples[:drop]
        self.evaluate(now)

    # ------------------------------------------------------------------
    def _burn_rate(
        self, objective: SloObjective, now: float, window: float
    ) -> Optional[float]:
        start = now - window
        total = 0
        bad = 0
        for when, latency, ok in self._samples:
            if when < start:
                continue
            total += 1
            if objective.is_bad(latency, ok):
                bad += 1
        if total < objective.min_events:
            return None
        return (bad / total) / objective.budget

    def evaluate(self, now: float) -> Dict[str, bool]:
        """Re-evaluate all objectives at sim time ``now``; emit transitions."""
        state: Dict[str, bool] = {}
        for objective in self.objectives:
            long_burn = self._burn_rate(objective, now, objective.window)
            short_burn = self._burn_rate(objective, now, objective.short_window)
            breaching = (
                long_burn is not None
                and short_burn is not None
                and long_burn >= objective.burn_threshold
                and short_burn >= objective.burn_threshold
            )
            previous = self._breaching[objective.name]
            if breaching != previous:
                self._breaching[objective.name] = breaching
                self.transitions.append((now, objective.name, breaching))
                recorder = self.recorder
                if recorder.enabled:
                    recorder.instant(
                        "slo.alert" if breaching else "slo.resolve",
                        now,
                        category="slo",
                        args={
                            "objective": objective.name,
                            "kind": objective.kind,
                            "long_burn": long_burn,
                            "short_burn": short_burn,
                            "burn_threshold": objective.burn_threshold,
                        },
                        wall_time=now,
                    )
                if breaching:
                    recorder.count("slo.alerts")
            state[objective.name] = breaching
        return state

    def breaching(self, name: str) -> bool:
        """Is objective ``name`` currently breaching?"""
        return self._breaching[name]

    def alert_count(self) -> int:
        return sum(1 for _, _, breaching in self.transitions if breaching)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SloMonitor({len(self.objectives)} objectives, "
            f"{self.alert_count()} alerts)"
        )
