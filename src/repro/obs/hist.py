"""Mergeable log-bucketed latency histograms.

A :class:`LogHistogram` is the fixed-shape sketch behind every
``recorder.observe(name, value)`` call: values are binned into
power-of-two buckets (bucket *e* covers ``[2**(e-1), 2**e)``), so the
sketch is

* **bounded** — at most one counter per occupied exponent, regardless
  of sample count;
* **mergeable** — two histograms with the same (universal) bucket
  layout merge by adding bucket counts, which is how cross-replica
  latency aggregates are built;
* **deterministic** — bucketing uses :func:`math.frexp` (exact binary
  exponent extraction, no ``log`` rounding fuzz), and every exported
  view sorts its keys, so same-seed runs serialize byte-identically.

Quantile estimates use the nearest-rank rule over bucket counts and
report the arithmetic midpoint of the bucket holding the rank-th
sample — guaranteed within one log2 bucket of the exact sorted
quantile (the regression tests assert exactly that against
``np.percentile`` on serve-bench latencies).  Exact ``count``, ``sum``,
``min`` and ``max`` are kept alongside the buckets, so means and range
endpoints are not sketched.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["LogHistogram", "bucket_index"]

#: Bucket index assigned to zero and negative samples (queue waits of
#: exactly 0 simulated seconds are common and must not be dropped).
UNDERFLOW_BUCKET = -1075  # below the smallest subnormal float exponent


def bucket_index(value: float) -> int:
    """The log2 bucket holding ``value``: bucket ``e`` is ``[2**(e-1), 2**e)``.

    Zero and negative values land in the dedicated underflow bucket.
    """
    if value <= 0.0:
        return UNDERFLOW_BUCKET
    _, exponent = math.frexp(value)  # value = m * 2**e with 0.5 <= m < 1
    return exponent


def _bucket_midpoint(bucket: int) -> float:
    """Arithmetic midpoint of bucket ``bucket`` (``1.5 * 2**(b-1)``)."""
    if bucket == UNDERFLOW_BUCKET:
        return 0.0
    return 1.5 * math.ldexp(1.0, bucket - 1)


class LogHistogram:
    """Fixed log2-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("_buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        bucket = bucket_index(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (cross-replica aggregation)."""
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Exact mean (sum and count are not sketched)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate, within one log2 bucket of exact.

        ``q <= 0`` returns the exact minimum and ``q >= 1`` the exact
        maximum; in between, the estimate is the midpoint of the bucket
        containing the ceil(q * count)-th smallest sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return float(self.min or 0.0)
        if q >= 1.0:
            return float(self.max or 0.0)
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for bucket in sorted(self._buckets):
            cumulative += self._buckets[bucket]
            if cumulative >= rank:
                return _bucket_midpoint(bucket)
        return float(self.max or 0.0)  # pragma: no cover - defensive

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted ``(bucket_exponent, count)`` pairs."""
        return sorted(self._buckets.items())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready view (bucket keys sorted, stringified)."""
        return {
            "buckets": {str(b): n for b, n in sorted(self._buckets.items())},
            "count": self.count,
            "max": self.max,
            "mean": self.mean(),
            "min": self.min,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_dict` output (report CLI)."""
        hist = cls()
        raw_buckets = data.get("buckets", {})
        if isinstance(raw_buckets, dict):
            for key, n in raw_buckets.items():
                hist._buckets[int(key)] = int(n)  # type: ignore[arg-type]
        hist.count = int(data.get("count", 0))  # type: ignore[arg-type]
        hist.sum = float(data.get("sum", 0.0))  # type: ignore[arg-type]
        raw_min = data.get("min")
        raw_max = data.get("max")
        hist.min = None if raw_min is None else float(raw_min)  # type: ignore[arg-type]
        hist.max = None if raw_max is None else float(raw_max)  # type: ignore[arg-type]
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, "
            f"buckets={len(self._buckets)}, mean={self.mean():.3g})"
        )
