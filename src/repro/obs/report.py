"""``repro report`` — deterministic run summaries from a trace artifact.

The Chrome trace written by ``--trace`` (or
:func:`~repro.obs.export.write_chrome_trace`) carries everything this
module needs: span events with causal identity in their ``args``
(``span``/``parent``/``trace_id``), histograms, counters, gauges, SLO
instants, and the flight-recorder tail in ``otherData``.  The report
projects out every host-dependent field (the wall-clock process, OS
thread ids), sorts all keys, and emits either JSON or text — so two
same-seed runs produce **byte-identical** reports even though their
raw traces differ in wall timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.export import SIM_PID, _format_rows

__all__ = [
    "load_trace",
    "build_report",
    "build_report_from_recorder",
    "render_report_text",
    "render_report_json",
]

REPORT_SCHEMA = "plinius-report/1"


def load_trace(path: str) -> Dict[str, Any]:
    """Load a Chrome trace-event document from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path} is not a Chrome trace-event document")
    return doc


def _sim_span_events(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [
        e
        for e in doc.get("traceEvents", [])
        if e.get("ph") == "X" and e.get("pid") == SIM_PID
    ]


def _span_aggregates(
    span_events: List[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    totals: Dict[str, Dict[str, Any]] = {}
    for event in span_events:
        entry = totals.setdefault(
            event["name"], {"count": 0, "sim_seconds": 0.0}
        )
        entry["count"] += 1
        entry["sim_seconds"] += float(event.get("dur", 0.0)) / 1e6
    return dict(sorted(totals.items()))


def _trace_trees(span_events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild one causal-tree summary per trace id from span identity."""
    by_trace: Dict[int, List[Dict[str, Any]]] = {}
    for event in span_events:
        args = event.get("args", {})
        trace_id = args.get("trace_id")
        if trace_id is None:
            continue
        by_trace.setdefault(int(trace_id), []).append(event)
    trees: List[Dict[str, Any]] = []
    for trace_id in sorted(by_trace):
        events = by_trace[trace_id]
        indices = {e["args"]["span"] for e in events}
        parents = {
            e["args"]["span"]: e["args"].get("parent") for e in events
        }
        roots = sorted(
            e["args"]["span"]
            for e in events
            if e["args"].get("parent") not in indices
        )
        # Depth of each node by walking parent links inside the trace.
        def depth_of(index: int) -> int:
            depth = 0
            current: Optional[int] = index
            while current is not None and depth <= len(indices):
                parent = parents.get(current)
                current = parent if parent in indices else None
                depth += 1
            return depth
        names = sorted(e["name"] for e in events)
        root_names = sorted(
            e["name"] for e in events if e["args"]["span"] in set(roots)
        )
        trees.append(
            {
                "trace_id": trace_id,
                "spans": len(events),
                "roots": len(roots),
                "root_names": root_names,
                "names": names,
                "max_depth": max(depth_of(e["args"]["span"]) for e in events),
            }
        )
    return trees


def _slo_events(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    out = []
    for event in doc.get("traceEvents", []):
        if (
            event.get("ph") == "i"
            and event.get("pid") == SIM_PID
            and str(event.get("name", "")).startswith("slo.")
        ):
            out.append(
                {
                    "name": event["name"],
                    "sim_time": float(event.get("ts", 0.0)) / 1e6,
                    "args": dict(sorted(event.get("args", {}).items())),
                }
            )
    out.sort(key=lambda e: (e["sim_time"], e["name"], repr(e["args"])))
    return out


def build_report(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministic report dict from a Chrome trace document."""
    other = doc.get("otherData", {}) or {}
    span_events = _sim_span_events(doc)
    trees = _trace_trees(span_events)
    return {
        "schema": REPORT_SCHEMA,
        "spans": _span_aggregates(span_events),
        "traces": {
            "count": len(trees),
            "trees": trees,
        },
        "histograms": other.get("histograms", {}) or {},
        "counters": dict(sorted((other.get("counters", {}) or {}).items())),
        "gauges": dict(sorted((other.get("gauges", {}) or {}).items())),
        "slo_events": _slo_events(doc),
        "flight": other.get("flight"),
    }


def build_report_from_recorder(recorder: Any) -> Dict[str, Any]:
    """Build the report straight from a live recorder (tests, benches)."""
    from repro.obs.export import to_chrome_trace

    return build_report(to_chrome_trace(recorder))


def render_report_json(report: Dict[str, Any]) -> str:
    """Canonical JSON rendering — byte-identical for same-seed runs."""
    return json.dumps(report, sort_keys=True, indent=1) + "\n"


def render_report_text(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    parts: List[str] = [f"repro report ({report['schema']})"]

    spans = report["spans"]
    parts.append("")
    if spans:
        parts.append(
            _format_rows(
                ["span", "count", "sim s"],
                [
                    [name, entry["count"], f"{entry['sim_seconds']:.6f}"]
                    for name, entry in spans.items()
                ],
            )
        )
    else:
        parts.append("(no spans recorded)")

    traces = report["traces"]
    parts.append("")
    parts.append(f"causal traces: {traces['count']}")
    if traces["trees"]:
        parts.append(
            _format_rows(
                ["trace", "spans", "depth", "root"],
                [
                    [
                        f"{t['trace_id']:#x}",
                        t["spans"],
                        t["max_depth"],
                        ",".join(t["root_names"]),
                    ]
                    for t in traces["trees"]
                ],
            )
        )

    histograms = report["histograms"]
    if histograms:
        parts.append("")
        parts.append(
            _format_rows(
                ["histogram", "count", "mean", "p50", "p99", "p999"],
                [
                    [
                        name,
                        hist["count"],
                        f"{float(hist['mean']):.6g}",
                        f"{float(hist['p50']):.6g}",
                        f"{float(hist['p99']):.6g}",
                        f"{float(hist['p999']):.6g}",
                    ]
                    for name, hist in histograms.items()
                ],
            )
        )

    metrics = [[name, value] for name, value in report["counters"].items()]
    metrics += [
        [f"{name} (gauge)", value] for name, value in report["gauges"].items()
    ]
    if metrics:
        parts.append("")
        parts.append(_format_rows(["metric", "value"], metrics))

    slo_events = report["slo_events"]
    parts.append("")
    if slo_events:
        parts.append(
            _format_rows(
                ["slo event", "sim time", "objective"],
                [
                    [
                        e["name"],
                        f"{e['sim_time']:.6f}",
                        str(e["args"].get("objective", "")),
                    ]
                    for e in slo_events
                ],
            )
        )
    else:
        parts.append("slo events: none")

    flight = report.get("flight")
    if flight:
        parts.append("")
        parts.append(
            f"flight recorder: {len(flight['events'])} events retained "
            f"({flight['dropped']} dropped of {flight['total']})"
        )
        tail = flight["events"][-8:]
        parts.append(
            _format_rows(
                ["kind", "name", "value"],
                [[e["kind"], e["name"], e["value"]] for e in tail],
            )
        )
    return "\n".join(parts) + "\n"
