"""Causal trace context — deterministic request-scoped span trees.

The serving tier fans one sealed request across layers that do not
share a call stack: the gateway admits it, the batcher coalesces it,
a replica's enclave decrypts it, and the crypto engine seals the
response — possibly twice, on different replicas, when a crash forces
an epoch-fenced redispatch.  Thread-local span stacks cannot express
that tree, so the request plane uses explicit :class:`TraceContext`
propagation instead:

* the gateway mints a **deterministic trace id** at admission —
  :func:`trace_id_of` is a pure function of ``(session_id, seq)``, so
  same-seed runs assign identical ids;
* each layer that does work on behalf of the request enters a
  :func:`trace_scope` naming the recorder, the parent span, and the
  deterministic sim timestamp to stamp on leaf spans;
* deep layers with no clock or recorder of their own
  (:class:`~repro.sgx.attestation.InferenceSession`,
  :class:`~repro.crypto.engine.EncryptionEngine`) consult
  :func:`current_trace` and, when a context is active, attach their
  spans to the request's tree via ``recorder.complete(parent=...)``.

The whole mechanism is off-path when tracing is off: no context is
ever pushed (the gateway guards on ``recorder.enabled``), so
:func:`current_trace` is one thread-local attribute read returning
``None``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "TraceContext",
    "trace_id_of",
    "current_trace",
    "trace_scope",
]

_local = threading.local()


def trace_id_of(session_id: int, seq: int) -> int:
    """Deterministic trace id for request ``seq`` of session ``session_id``.

    A pure function — no global counter — so the id is stable across
    redispatches, reboots, and same-seed reruns.
    """
    return ((session_id & 0xFFFFFFFF) << 32) | (seq & 0xFFFFFFFF)


class TraceContext:
    """One request's position in its causal tree, at one layer."""

    __slots__ = ("trace_id", "recorder", "parent", "sim_now")

    def __init__(
        self,
        trace_id: int,
        recorder: Any,
        parent: Any,
        sim_now: float,
    ) -> None:
        self.trace_id = trace_id
        #: The :class:`~repro.obs.recorder.TraceRecorder` spans attach to.
        self.recorder = recorder
        #: Parent :class:`~repro.obs.recorder.Span` for new child spans.
        self.parent = parent
        #: Deterministic sim timestamp leaf spans are stamped with
        #: (deep layers have no clock; the dispatching layer supplies it).
        self.sim_now = sim_now

    def child(self, parent: Any) -> "TraceContext":
        """A derived context whose children attach under ``parent``."""
        return TraceContext(self.trace_id, self.recorder, parent, self.sim_now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace_id={self.trace_id:#x})"


def current_trace() -> Optional[TraceContext]:
    """The calling thread's active trace context, or ``None``."""
    return getattr(_local, "ctx", None)


@contextmanager
def trace_scope(ctx: TraceContext) -> Iterator[TraceContext]:
    """Install ``ctx`` as the thread's trace context for the block."""
    previous = getattr(_local, "ctx", None)
    _local.ctx = ctx
    try:
        yield ctx
    finally:
        _local.ctx = previous
