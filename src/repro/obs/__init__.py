"""``repro.obs`` — unified tracing and metrics for the reproduction.

The paper's core evidence is *breakdowns*: Table I splits mirror-out
cost into encrypt vs. PM-write, Fig. 7 shows where time goes as models
cross the EPC limit, Fig. 9/10 attribute resume cost to read vs.
decrypt.  This package makes that attribution a first-class subsystem:

* :class:`TraceRecorder` — hierarchical spans carrying **both** clocks
  (deterministic simulated seconds and host wall-clock seconds), with
  parent/child nesting, thread ids, and simulated crypto-worker lanes;
* :class:`~repro.obs.metrics.CounterRegistry` — component counters
  (ecalls/ocalls, EPC page swaps, PM bytes read/written/flushed,
  Romulus commits/aborts/recoveries, sealed/unsealed bytes) and gauges
  (im2col cache hits);
* exporters — Chrome trace-event JSON (open in Perfetto), a JSONL
  stream, and a human-readable summary.

Tracing is off by default: every component reaches the recorder through
``clock.recorder``, which is the allocation-free :data:`NULL_RECORDER`
unless one is attached via ``PliniusSystem.create(..., recorder=...)``
or installed process-wide with :func:`install_default_recorder` (what
the ``repro <cmd> --trace PATH`` CLI flag does).

See ``docs/observability.md`` for the span taxonomy and counter names.
"""

from repro.obs.context import (
    TraceContext,
    current_trace,
    trace_id_of,
    trace_scope,
)
from repro.obs.export import (
    mirror_breakdown,
    phase_totals,
    summary,
    to_chrome_trace,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flight import FlightRecorder, FlightRing
from repro.obs.hist import LogHistogram
from repro.obs.metrics import CounterRegistry
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
    get_default_recorder,
    install_default_recorder,
)
from repro.obs.report import (
    build_report,
    build_report_from_recorder,
    load_trace,
    render_report_json,
    render_report_text,
)
from repro.obs.slo import SloMonitor, SloObjective, error_rate_slo, latency_slo

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "CounterRegistry",
    "LogHistogram",
    "FlightRecorder",
    "FlightRing",
    "TraceContext",
    "trace_id_of",
    "current_trace",
    "trace_scope",
    "SloMonitor",
    "SloObjective",
    "latency_slo",
    "error_rate_slo",
    "get_default_recorder",
    "install_default_recorder",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_lines",
    "write_jsonl",
    "phase_totals",
    "mirror_breakdown",
    "summary",
    "build_report",
    "build_report_from_recorder",
    "load_trace",
    "render_report_json",
    "render_report_text",
]
