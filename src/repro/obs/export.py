"""Trace exporters: Chrome trace-event JSON, JSONL, and summary tables.

Chrome trace format reference:
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
— the JSON loads in ``chrome://tracing`` and https://ui.perfetto.dev.

The dual clocks are rendered as two *processes*: pid 1 is the simulated
timeline (deterministic; microseconds = simulated seconds × 1e6) and
pid 2 the wall-clock timeline.  Crypto-pool spans appear on per-worker
lanes of the sim process (the simulated greedy schedule) and on their
real OS thread in the wall process.  Counters are emitted as final
``C`` events; instant events (``romulus.recover``) as ``i`` events on
both timelines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.recorder import Span, TraceRecorder

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_lines",
    "write_jsonl",
    "phase_totals",
    "mirror_breakdown",
    "summary",
]

SIM_PID = 1
WALL_PID = 2
#: Sim-process lane offset for simulated crypto workers (tid = base + lane).
SIM_LANE_TID_BASE = 100


def _us(seconds: float) -> float:
    return seconds * 1e6


def _span_events(span: Span) -> List[Dict[str, Any]]:
    # Identity fields ride in args so the causal tree (and the ``repro
    # report`` CLI) can be rebuilt from the exported JSON alone.
    args = dict(sorted((span.args or {}).items()))
    args["span"] = span.index
    if span.parent_index is not None:
        args["parent"] = span.parent_index
    if span.trace_id is not None:
        args["trace_id"] = span.trace_id
    sim_tid = (
        SIM_LANE_TID_BASE + span.sim_lane
        if span.sim_lane is not None
        else span.thread_id
    )
    common = {"name": span.name, "cat": span.category or "span", "ph": "X"}
    return [
        {
            **common,
            "pid": SIM_PID,
            "tid": sim_tid,
            "ts": _us(span.sim_start),
            "dur": _us(span.sim_elapsed),
            "args": args,
        },
        {
            **common,
            "pid": WALL_PID,
            "tid": span.thread_id,
            "ts": _us(span.wall_start),
            "dur": _us(span.wall_elapsed),
            "args": args,
        },
    ]


def _lane_name(lane: int, categories: "set[str]") -> str:
    """Deterministic display name for one simulated lane.

    Crypto-pool lanes and serving-replica lanes share the tid space
    (``100 + k`` vs ``100 + 200 + N``); the name is derived from the
    categories actually drawn on the lane so a collision (crypto lane
    ``200 + N``) degrades to a neutral label instead of mislabelling.
    """
    if categories == {"crypto"}:
        return f"sim-crypto-worker-{lane}"
    if categories == {"serve"} and lane >= 200:
        return f"sim-serve-replica-{lane - 200}"
    return f"sim-lane-{lane}"


def to_chrome_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """Render the recorder's contents as a Chrome trace-event document."""
    events: List[Dict[str, Any]] = []
    metadata = [
        ("process_name", SIM_PID, 0, {"name": "sim-time (deterministic)"}),
        ("process_name", WALL_PID, 0, {"name": "wall-clock"}),
    ]
    lanes: Dict[int, set] = {}
    threads = set()
    for span in list(recorder.spans):
        events.extend(_span_events(span))
        threads.add(span.thread_id)
        if span.sim_lane is not None:
            lanes.setdefault(span.sim_lane, set()).add(span.category or "span")
    for tid in sorted(threads):
        name = "main" if tid == 0 else f"thread-{tid}"
        metadata.append(("thread_name", SIM_PID, tid, {"name": name}))
        metadata.append(("thread_name", WALL_PID, tid, {"name": name}))
    for lane in sorted(lanes):
        metadata.append(
            (
                "thread_name",
                SIM_PID,
                SIM_LANE_TID_BASE + lane,
                {"name": _lane_name(lane, lanes[lane])},
            )
        )

    for event in list(recorder.events):
        for pid, ts in (
            (SIM_PID, event["sim_time"]),
            (WALL_PID, event["wall_time"]),
        ):
            events.append(
                {
                    "name": event["name"],
                    "cat": event["category"] or "event",
                    "ph": "i",
                    "s": "g",  # global-scope instant marker
                    "pid": pid,
                    "tid": event["thread_id"],
                    "ts": _us(ts),
                    "args": event["args"],
                }
            )

    # Final counter samples at the end of the sim timeline.
    end_ts = max(
        [_us(s.sim_end) for s in recorder.spans]
        + [_us(e["sim_time"]) for e in recorder.events]
        + [0.0]
    )
    for name, value in recorder.counters.snapshot().items():
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "pid": SIM_PID,
                "tid": 0,
                "ts": end_ts,
                "args": {"value": value},
            }
        )

    # Deterministic event order: metadata first (sorted), then data
    # events sorted on stable keys — identical recorder contents always
    # serialize byte-identically regardless of completion interleaving.
    events.sort(
        key=lambda e: (
            e["pid"],
            e["tid"],
            e["ts"],
            e["ph"],
            e["name"],
            json.dumps(e.get("args", {}), sort_keys=True, default=str),
        )
    )
    trace_events = [
        {
            "name": kind,
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        for kind, pid, tid, args in sorted(
            metadata, key=lambda m: (m[0], m[1], m[2])
        )
    ] + events
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "counters": recorder.counters.snapshot(),
            "gauges": recorder.counters.gauges_snapshot(),
            "histograms": recorder.counters.histograms_snapshot(),
            "flight": recorder.flight.snapshot()
            if hasattr(recorder, "flight")
            else None,
        },
    }


def write_chrome_trace(recorder: TraceRecorder, path: str) -> Dict[str, Any]:
    """Serialize the Chrome trace to ``path``; returns the document."""
    doc = to_chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# JSONL event stream
# ----------------------------------------------------------------------
def to_jsonl_lines(recorder: TraceRecorder) -> List[str]:
    """One JSON object per line: spans, instants, then final metrics."""
    lines = []
    for span in list(recorder.spans):
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": span.name,
                    "category": span.category,
                    "index": span.index,
                    "parent": span.parent_index,
                    "thread": span.thread_id,
                    "sim_lane": span.sim_lane,
                    "trace_id": span.trace_id,
                    "sim_start": span.sim_start,
                    "sim_end": span.sim_end,
                    "wall_start": span.wall_start,
                    "wall_end": span.wall_end,
                    "args": dict(sorted((span.args or {}).items())),
                },
                sort_keys=True,
            )
        )
    for event in list(recorder.events):
        lines.append(
            json.dumps({"type": "instant", **event}, sort_keys=True)
        )
    for name, value in recorder.counters.snapshot().items():
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "value": value},
                sort_keys=True,
            )
        )
    for name, value in recorder.counters.gauges_snapshot().items():
        lines.append(
            json.dumps(
                {"type": "gauge", "name": name, "value": value},
                sort_keys=True,
            )
        )
    for name, hist in recorder.counters.histograms_snapshot().items():
        lines.append(
            json.dumps(
                {"type": "histogram", "name": name, "hist": hist},
                sort_keys=True,
            )
        )
    return lines


def write_jsonl(recorder: TraceRecorder, path: str) -> int:
    """Write the JSONL stream to ``path``; returns the line count."""
    lines = to_jsonl_lines(recorder)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


# ----------------------------------------------------------------------
# Aggregation + summary
# ----------------------------------------------------------------------
def phase_totals(
    recorder: TraceRecorder, prefix: Optional[str] = None
) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: count plus total sim/wall seconds.

    ``prefix`` filters to one component's taxonomy (e.g. ``"mirror."``).
    """
    totals: Dict[str, Dict[str, float]] = {}
    for span in list(recorder.spans):
        if prefix is not None and not span.name.startswith(prefix):
            continue
        entry = totals.setdefault(
            span.name, {"count": 0, "sim_seconds": 0.0, "wall_seconds": 0.0}
        )
        entry["count"] += 1
        entry["sim_seconds"] += span.sim_elapsed
        entry["wall_seconds"] += span.wall_elapsed
    return dict(sorted(totals.items()))


def mirror_breakdown(recorder: TraceRecorder) -> Dict[str, float]:
    """Table Ia percentages computed from span data alone.

    Save = ``mirror.encrypt`` vs ``mirror.layout + mirror.write`` (the
    layout walk is storage work, exactly as
    :class:`~repro.core.mirror.MirrorTiming` accounts it); restore =
    ``mirror.read`` vs ``mirror.decrypt``.  Raises :class:`ValueError`
    when the trace holds no mirror operations.
    """
    totals = phase_totals(recorder, prefix="mirror.")

    def sim(name: str) -> float:
        return totals.get(name, {}).get("sim_seconds", 0.0)

    encrypt = sim("mirror.encrypt")
    write = sim("mirror.layout") + sim("mirror.write")
    read = sim("mirror.read")
    decrypt = sim("mirror.decrypt")
    save_total = encrypt + write
    restore_total = read + decrypt
    if save_total <= 0 and restore_total <= 0:
        raise ValueError("trace contains no mirror.out/mirror.in spans")
    result: Dict[str, float] = {}
    if save_total > 0:
        result["save_encrypt_pct"] = 100.0 * encrypt / save_total
        result["save_write_pct"] = 100.0 * write / save_total
    if restore_total > 0:
        result["restore_read_pct"] = 100.0 * read / restore_total
        result["restore_decrypt_pct"] = 100.0 * decrypt / restore_total
    return result


def _format_rows(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    table = [[str(c) for c in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def summary(recorder: TraceRecorder) -> str:
    """Human-readable per-phase and counter summary of a trace."""
    totals = phase_totals(recorder)
    parts = []
    if totals:
        parts.append(
            _format_rows(
                ["span", "count", "sim s", "wall s"],
                [
                    [
                        name,
                        int(entry["count"]),
                        f"{entry['sim_seconds']:.6f}",
                        f"{entry['wall_seconds']:.6f}",
                    ]
                    for name, entry in totals.items()
                ],
            )
        )
    else:
        parts.append("(no spans recorded)")
    counters = recorder.counters.snapshot()
    gauges = recorder.counters.gauges_snapshot()
    if counters or gauges:
        parts.append("")
        parts.append(
            _format_rows(
                ["metric", "value"],
                [[name, value] for name, value in counters.items()]
                + [[f"{name} (gauge)", value] for name, value in gauges.items()],
            )
        )
    histograms = recorder.counters.histograms_snapshot()
    if histograms:
        parts.append("")
        parts.append(
            _format_rows(
                ["histogram", "count", "mean", "p50", "p99", "p999", "max"],
                [
                    [
                        name,
                        hist["count"],
                        f"{hist['mean']:.6g}",
                        f"{hist['p50']:.6g}",
                        f"{hist['p99']:.6g}",
                        f"{hist['p999']:.6g}",
                        f"{hist['max']:.6g}" if hist["max"] is not None else "-",
                    ]
                    for name, hist in histograms.items()
                ],
            )
        )
    events = list(recorder.events)
    if events:
        parts.append("")
        parts.append(
            _format_rows(
                ["event", "sim time", "args"],
                [
                    [e["name"], f"{e['sim_time']:.6f}", json.dumps(e["args"], sort_keys=True)]
                    for e in events
                ],
            )
        )
    return "\n".join(parts)
