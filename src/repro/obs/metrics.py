"""Component counters and gauges — the numeric half of ``repro.obs``.

The registry is a flat, thread-safe ``name -> value`` map shared by every
instrumented component of one :class:`~repro.obs.recorder.TraceRecorder`.
Counters are monotonically increasing sums (``pm.bytes_read``,
``crypto.seals``, ``romulus.commits``, ...); gauges are
last-writer-wins samples (``im2col.cache_hits`` read from the process-wide
``lru_cache`` statistics).

Naming convention: ``<component>.<metric>`` with dot-separated lowercase
segments; byte quantities end in ``_bytes`` or start with ``bytes_``.
The canonical names emitted by the built-in instrumentation are listed in
``docs/observability.md``.

All counter values are derived from deterministic simulated work, so two
same-seed runs produce identical snapshots (gauges sampled from
process-global caches, such as the im2col patch-index cache, are the
documented exception).
"""

from __future__ import annotations

import threading
from typing import Dict, Union

from repro.obs.hist import LogHistogram

Number = Union[int, float]


class CounterRegistry:
    """Thread-safe counter/gauge/histogram registry.

    Increments from the crypto worker pool race with main-thread
    increments; a single lock makes every update atomic so the registry
    never drifts from the per-component ``stats`` dicts it mirrors
    (asserted by ``tests/test_obs_integration.py``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    # ------------------------------------------------------------------
    def add(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        """Record the latest sample of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Add one sample to the log2-bucket histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = LogHistogram()
                self._histograms[name] = hist
            hist.record(float(value))

    # ------------------------------------------------------------------
    def get(self, name: str, default: Number = 0) -> Number:
        """Current value of counter ``name`` (gauges shadow nothing)."""
        with self._lock:
            return self._counters.get(name, default)

    def get_gauge(self, name: str, default: Number = 0) -> Number:
        """Latest sample of gauge ``name``."""
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> Dict[str, Number]:
        """Counters only, sorted by name (deterministic for same-seed runs)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges_snapshot(self) -> Dict[str, Number]:
        """Gauges only, sorted by name."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def histogram(self, name: str) -> LogHistogram:
        """The live histogram ``name`` (created empty on first access)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = LogHistogram()
                self._histograms[name] = hist
            return hist

    def histograms_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Histograms as deterministic dicts, sorted by name."""
        with self._lock:
            return {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            }

    def clear(self) -> None:
        """Drop every counter, gauge, and histogram (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters) + len(self._gauges) + len(self._histograms)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterRegistry({len(self)} metrics)"
