"""Size/deadline-bounded request coalescing for the gateway.

Batching is where enclave inference throughput is won (Occlumency,
Clipper): every batch dispatched into a replica pays a fixed setup cost
(weight staging, enclave entry), so riding more requests per entry
amortizes it.  The flip side is latency — a request must not sit
waiting for a full batch forever — so the batcher dispatches when
either bound trips:

* **size**: ``max_requests`` are waiting, or
* **deadline**: the oldest waiting request has been queued for
  ``max_delay`` simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence


@dataclass(frozen=True)
class BatchPolicy:
    """Size and deadline bounds for one coalesced batch."""

    max_requests: int = 16
    #: Longest a queued request may wait before its batch is forced out,
    #: in simulated seconds.
    max_delay: float = 2e-3

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")


@dataclass
class PendingRequest:
    """One admitted, not-yet-dispatched sealed request."""

    request_id: int
    session_id: int
    seq: int
    sealed: bytes
    n_samples: int
    arrival: float
    #: Dispatch attempts so far (bumped when a replica dies mid-batch
    #: and the request is redispatched).
    attempts: int = 0
    #: Deterministic causal-trace id (``obs.context.trace_id_of``); the
    #: id survives requeues and redispatches, so every retry's spans
    #: land in the same tree.
    trace_id: int = 0
    #: Root ``serve.request`` span opened at admission (``None`` when
    #: tracing is off); carried with the request across batching and
    #: redispatch so downstream layers can attach children.
    root: Optional[Any] = None


class RequestQueue:
    """Arrival-ordered FIFO of pending requests.

    Kept sorted by ``(arrival, request_id)``: normal arrivals append in
    time order, and requests requeued after a replica crash re-enter at
    their original position so the redispatch preserves the sequential
    reference order.
    """

    def __init__(self) -> None:
        self._items: List[PendingRequest] = []

    def __len__(self) -> int:
        return len(self._items)

    def append(self, request: PendingRequest) -> None:
        self._items.append(request)

    def requeue(self, requests: Sequence[PendingRequest]) -> None:
        """Re-insert crashed-batch requests at their arrival positions."""
        self._items.extend(requests)
        self._items.sort(key=lambda r: (r.arrival, r.request_id))

    def oldest(self) -> Optional[PendingRequest]:
        return self._items[0] if self._items else None

    def take(self, n: int) -> List[PendingRequest]:
        """Pop the ``n`` oldest requests (fewer if the queue is shorter)."""
        batch, self._items = self._items[:n], self._items[n:]
        return batch


class Batcher:
    """The dispatch decision: when is a batch ready, and what's in it."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy

    def ready(self, queue: RequestQueue, now: float) -> bool:
        """Whether the queue holds a dispatchable batch at sim ``now``."""
        oldest = queue.oldest()
        if oldest is None:
            return False
        if len(queue) >= self.policy.max_requests:
            return True
        return now >= oldest.arrival + self.policy.max_delay

    def take(self, queue: RequestQueue) -> List[PendingRequest]:
        """Pop one batch (up to the size bound) in arrival order."""
        return queue.take(self.policy.max_requests)

    def next_deadline(self, queue: RequestQueue) -> Optional[float]:
        """Sim time at which the oldest waiting request must go out."""
        oldest = queue.oldest()
        if oldest is None:
            return None
        return oldest.arrival + self.policy.max_delay
