"""The event-driven secure inference gateway (deterministic scheduler).

A discrete-event simulation on the deployment's single
:class:`~repro.simtime.clock.SimClock`: arrivals, batch deadlines,
batch completions, replica crash/repair, and hot-reload publications
are all events on one arrival-time priority queue, popped in
``(sim time, insertion order)`` order.  Everything downstream —
batch composition, replica choice, service times, response bytes — is
a deterministic function of the submitted requests and the cost
models, so the same seed yields bit-identical sealed responses and an
identical sim trace.

Scheduling loop per event:

1. advance the clock to the event time (never backwards — a reload's
   ``mirror_in`` may have pushed global time past a pending
   completion, which then simply completes "late");
2. handle the event (admit/queue an arrival, deliver a completed
   batch, crash/repair a replica, publish a new model generation);
3. dispatch ready batches to free healthy replicas, hot-reloading a
   replica first if it is behind the published generation.

Failure handling: a replica that dies mid-batch (``crash``) has its
in-flight requests requeued at their original arrival positions and
redispatched **exactly once** — response nonces are derived from
``(session, seq)``, so the redispatched replies are byte-identical and
no client can observe a duplicate.  A transient dispatch failure
(``serve.dispatch`` ABORT, modelling an ecall error return) retries the
batch on the next healthy replica under the same exactly-once rule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.fabric import ServingFabric
from repro.cluster.loop import EventLoop
from repro.cluster.runtime import get_active_cluster
from repro.crypto.engine import SEAL_OVERHEAD
from repro.faults import plan as faultplan
from repro.faults.plan import InjectedEcallAbort, InjectedLinkDrop
from repro.obs.context import trace_id_of
from repro.obs.slo import SloMonitor
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import (
    Batcher,
    BatchPolicy,
    PendingRequest,
    RequestQueue,
)
from repro.serving.replica_pool import ReplicaPool, ServingReplica
from repro.simtime.clock import SimClock

#: ``Network.flops`` counts a full training step (forward + backward +
#: update); serving runs the forward pass only.
FORWARD_FLOPS_FRACTION = 1.0 / 3.0

#: A batch may be dispatched at most twice (original + one redispatch);
#: a second failure for the same requests is fatal, never silent.
MAX_DISPATCH_ATTEMPTS = 2

#: Recorder sim-lane ids for per-replica batch spans (crypto workers
#: use 100+k; serving replicas get their own band).
REPLICA_LANE_BASE = 200


@dataclass
class ResponseRecord:
    """One delivered sealed reply plus its latency accounting."""

    request_id: int
    session_id: int
    seq: int
    sealed: bytes
    arrival: float
    completed: float
    replica: int
    generation: int
    batch_id: int

    @property
    def latency(self) -> float:
        return self.completed - self.arrival


@dataclass
class BatchRecord:
    """One dispatched batch's lifecycle."""

    batch_id: int
    replica: int
    generation: int
    n_requests: int
    n_samples: int
    dispatched_at: float
    completed_at: Optional[float] = None
    attempts: int = 1


@dataclass
class GatewayResult:
    """Everything one :meth:`InferenceGateway.run` drain produced."""

    responses: Dict[int, ResponseRecord] = field(default_factory=dict)
    rejected: List[int] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    redispatches: int = 0

    def latencies(self) -> List[float]:
        """Per-request sim latencies in request-id order."""
        return [
            self.responses[rid].latency for rid in sorted(self.responses)
        ]

    def sealed_by_request(self) -> Dict[int, bytes]:
        return {rid: r.sealed for rid, r in self.responses.items()}


class LegacyEventQueue:
    """The gateway's original private heapq scheduler, frozen.

    This is the pre-substrate event loop kept verbatim: a gateway handed
    one of these behaves exactly as the gateway did before
    ``repro.cluster`` existed, which makes it the reference side of the
    differential equivalence tests
    (``tests/test_cluster_equivalence.py`` proves the substrate-backed
    gateway produces byte-identical traces, counters, and sealed
    responses).  Production code always uses
    :class:`~repro.cluster.loop.EventLoop`.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._events: List[Tuple[float, int, str, object]] = []
        self._order = 0

    def push(self, at: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (float(at), self._order, kind, payload))
        self._order += 1

    def pending(self) -> int:
        return len(self._events)

    def run(
        self,
        handler: Callable[[str, object], None],
        post_event: Optional[Callable[[], None]] = None,
    ) -> None:
        while self._events:
            t, _, kind, payload = heapq.heappop(self._events)
            now = self.clock.now()
            if t > now:
                self.clock.advance(t - now)
            handler(kind, payload)
            if post_event is not None:
                post_event()


class InferenceGateway:
    """Batching, replicated, hot-reloading front of the secure service."""

    def __init__(
        self,
        pool: ReplicaPool,
        clock: SimClock,
        batch_policy: Optional[BatchPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        slo: Optional[SloMonitor] = None,
        loop=None,
        fabric: Optional[ServingFabric] = None,
    ) -> None:
        self.pool = pool
        self.clock = clock
        self.batcher = Batcher(batch_policy or BatchPolicy())
        self.admission = AdmissionController(
            admission_policy or AdmissionPolicy()
        )
        #: Optional SLO monitor fed every delivery/rejection on sim time.
        self.slo = slo
        if loop is None:
            # Ride the ambient cluster's loop when one shares our clock;
            # otherwise stand up a private substrate loop.
            cluster = get_active_cluster()
            if cluster is not None and cluster.clock is clock:
                loop = cluster.loop
            else:
                loop = EventLoop(clock)
        #: The event scheduler (a cluster EventLoop, or the frozen
        #: LegacyEventQueue in the differential tests).
        self.loop = loop
        #: Optional host placement: arms the cluster.partition /
        #: cluster.deliver barriers on the dispatch and completion edges.
        self.fabric = fabric
        self.queue = RequestQueue()
        self.result = GatewayResult()
        self._next_request_id = 0
        self._next_batch_id = 0
        self._batch_records: Dict[int, BatchRecord] = {}

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, at: float, kind: str, payload: object) -> None:
        self.loop.push(at, kind, payload)

    # ------------------------------------------------------------------
    # Submission API (all sim-time scheduled)
    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: int,
        seq: int,
        sealed: bytes,
        n_samples: int,
        at: float,
    ) -> int:
        """Enqueue one sealed client request arriving at sim ``at``."""
        request_id = self._next_request_id
        self._next_request_id += 1
        request = PendingRequest(
            request_id=request_id,
            session_id=session_id,
            seq=seq,
            sealed=sealed,
            n_samples=n_samples,
            arrival=float(at),
            trace_id=trace_id_of(session_id, seq),
        )
        self._push(at, "arrival", request)
        return request_id

    def schedule_call(self, at: float, fn: Callable[[], object]) -> None:
        """Run ``fn`` at sim ``at`` (trainer steps, test choreography)."""
        self._push(at, "call", fn)

    def schedule_reload(self, at: float) -> None:
        """Publish the mirror's newest generation at sim ``at``."""
        self._push(at, "call", self.pool.publish_generation)

    def schedule_crash(self, at: float, index: int) -> None:
        """Kill replica ``index`` at sim ``at`` (spot eviction)."""
        self._push(at, "crash", index)

    def schedule_repair(self, at: float, index: int) -> None:
        """Respawn replica ``index`` from the mirror at sim ``at``."""
        self._push(at, "repair", index)

    # ------------------------------------------------------------------
    # The drain loop
    # ------------------------------------------------------------------
    def run(self) -> GatewayResult:
        """Process every scheduled event; returns the drain's result."""
        self.loop.run(self._handle_event, post_event=self._dispatch_ready)
        if len(self.queue):
            raise RuntimeError(
                f"gateway drained its events with {len(self.queue)} "
                "requests still queued (every replica dead with no "
                "repair scheduled?)"
            )
        return self.result

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_event(self, kind: str, payload: object) -> None:
        if kind == "arrival":
            self._on_arrival(payload)
        elif kind == "done":
            self._on_done(payload)
        elif kind == "call":
            payload()
        elif kind == "crash":
            self._on_crash(payload)
        elif kind == "repair":
            self.pool.repair(payload)
        # "deadline" events exist only to wake the dispatcher.

    def _on_arrival(self, request: PendingRequest) -> None:
        recorder = self.clock.recorder
        if not self.admission.admit(len(self.queue)):
            self.result.rejected.append(request.request_id)
            if recorder.enabled:
                recorder.count("serve.rejected")
            if self.slo is not None:
                self.slo.record(self.clock.now(), 0.0, ok=False)
            return
        self.queue.append(request)
        if recorder.enabled:
            recorder.count("serve.admitted")
            recorder.gauge("serve.queue_depth", len(self.queue))
            # Admission mints the request's causal tree: one root span
            # per request, open until the sealed response is delivered.
            request.root = recorder.begin(
                "serve.request",
                request.arrival,
                category="serve",
                args={
                    "request": request.request_id,
                    "session": request.session_id,
                    "seq": request.seq,
                },
                parent=None,
                trace_id=request.trace_id,
            )
        deadline = self.batcher.next_deadline(self.queue)
        if deadline is not None:
            self._push(deadline, "deadline", None)

    def _on_done(self, payload) -> None:
        index, epoch, batch_id, batch = payload
        replica = self.pool.replicas[index]
        if replica.epoch != epoch:
            return  # completion of a dead incarnation: discard
        active = faultplan.ACTIVE
        if self.fabric is not None and active.enabled:
            try:
                self.fabric.completion_barrier(index)
            except InjectedLinkDrop:
                # The completion notification died on the replica ->
                # gateway edge: the replica is idle again but the
                # gateway never heard, so the batch reruns under the
                # exactly-once rule (pinned nonces keep bytes equal).
                replica.busy = False
                replica.inflight = None
                self._requeue_for_redispatch(list(batch), reason="drop")
                return
        recorder = self.clock.recorder
        record = self._batch_records[batch_id]
        traces = None
        if recorder.enabled:
            # One ``serve.enclave`` child per request, opened before the
            # real in-enclave work so the session/crypto leaf spans can
            # attach underneath (closed after ``handle_batch`` returns).
            traces = [
                recorder.begin(
                    "serve.enclave",
                    record.dispatched_at,
                    category="serve",
                    args={"batch": batch_id, "replica": index},
                    parent=r.root,
                    trace_id=r.trace_id,
                )
                if r.root is not None
                else None
                for r in batch
            ]
        responses = replica.service.handle_batch(
            [(r.session_id, r.seq, r.sealed) for r in batch],
            traces=traces,
        )
        now = self.clock.now()
        for request, sealed in zip(batch, responses):
            if request.request_id in self.result.responses:
                raise RuntimeError(
                    f"duplicate response for request {request.request_id}"
                )
            self.result.responses[request.request_id] = ResponseRecord(
                request_id=request.request_id,
                session_id=request.session_id,
                seq=request.seq,
                sealed=sealed,
                arrival=request.arrival,
                completed=now,
                replica=index,
                generation=replica.generation,
                batch_id=batch_id,
            )
            if self.slo is not None:
                self.slo.record(now, now - request.arrival, ok=True)
        record.completed_at = now
        replica.busy = False
        replica.inflight = None
        if recorder.enabled:
            recorder.count("serve.responses", len(batch))
            for request, enclave_span in zip(batch, traces or []):
                if enclave_span is not None:
                    recorder.end(enclave_span, now)
                if request.root is None:
                    continue
                recorder.complete(
                    "serve.response",
                    sim_start=now,
                    sim_end=now,
                    wall_start=recorder.wall_now(),
                    wall_end=recorder.wall_now(),
                    category="serve",
                    args={
                        "batch": batch_id,
                        "replica": index,
                        "generation": replica.generation,
                        "bytes": len(
                            self.result.responses[request.request_id].sealed
                        ),
                    },
                    parent=request.root,
                    trace_id=request.trace_id,
                )
                recorder.end(request.root, now)
                request.root = None  # the tree is sealed: deliver once
                recorder.observe("serve.e2e", now - request.arrival)

    def _on_crash(self, index: int) -> None:
        replica = self.pool.replicas[index]
        batch = replica.inflight
        self.pool.crash(index)
        if batch:
            self._requeue_for_redispatch(list(batch))

    def _requeue_for_redispatch(
        self, batch: List[PendingRequest], reason: str = "crash"
    ) -> None:
        for request in batch:
            request.attempts += 1
            if request.attempts >= MAX_DISPATCH_ATTEMPTS:
                raise RuntimeError(
                    f"request {request.request_id} failed dispatch "
                    f"{request.attempts} times; exactly-once redispatch "
                    "exhausted"
                )
        self.result.redispatches += 1
        self.queue.requeue(batch)
        recorder = self.clock.recorder
        if recorder.enabled:
            recorder.count("serve.redispatched", len(batch))
            self._mark_redispatch(batch, reason)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _free_replica(
        self, after: Optional[int] = None
    ) -> Optional[ServingReplica]:
        """Lowest-index healthy idle replica (rotated past ``after``)."""
        candidates = [
            r for r in self.pool.replicas if r.healthy and not r.busy
        ]
        if not candidates:
            return None
        if after is None:
            return candidates[0]
        rotated = [r for r in candidates if r.index != after]
        return rotated[0] if rotated else candidates[0]

    def _dispatch_ready(self) -> None:
        while True:
            if not self.batcher.ready(self.queue, self.clock.now()):
                return
            replica = self._free_replica()
            if replica is None:
                return
            batch = self.batcher.take(self.queue)
            self._dispatch(batch, replica)
            # Requests left behind by a partial take need their own
            # wake-up: their arrival-time deadline events pointed at the
            # (now dispatched) older head of the queue.
            deadline = self.batcher.next_deadline(self.queue)
            if deadline is not None:
                self._push(deadline, "deadline", None)

    def _dispatch(
        self, batch: List[PendingRequest], replica: ServingReplica
    ) -> None:
        # Hot reload happens strictly between batches: the replica is
        # idle here, so the generation swap is atomic w.r.t. serving.
        self.pool.maybe_reload(replica)
        active = faultplan.ACTIVE
        if active.enabled:
            if self.fabric is not None:
                try:
                    self.fabric.dispatch_barrier(replica.index)
                except InjectedLinkDrop:
                    # The gateway -> replica edge is partitioned: the
                    # batch never reached this replica, so route around
                    # it exactly like a failed ecall.
                    self._redispatch_after_abort(
                        batch, replica, reason="partition"
                    )
                    return
            try:
                active.check("serve.dispatch")
            except InjectedEcallAbort:
                self._redispatch_after_abort(batch, replica)
                return
        self._start_batch(batch, replica)

    def _redispatch_after_abort(
        self,
        batch: List[PendingRequest],
        failed: ServingReplica,
        reason: str = "abort",
    ) -> None:
        """The batch's ecall failed before entering the enclave: retry
        once, preferring a different replica."""
        for request in batch:
            request.attempts += 1
            if request.attempts >= MAX_DISPATCH_ATTEMPTS:
                raise RuntimeError(
                    f"request {request.request_id} failed dispatch "
                    f"{request.attempts} times; exactly-once redispatch "
                    "exhausted"
                )
        self.result.redispatches += 1
        recorder = self.clock.recorder
        if recorder.enabled:
            recorder.count("serve.redispatched", len(batch))
            self._mark_redispatch(batch, reason)
        replica = self._free_replica(after=failed.index)
        if replica is None:
            self.queue.requeue(batch)
            return
        self._dispatch(batch, replica)

    def _mark_redispatch(
        self, batch: List[PendingRequest], reason: str
    ) -> None:
        """Zero-width child spans making retries visible in each tree."""
        recorder = self.clock.recorder
        now = self.clock.now()
        for request in batch:
            if request.root is None:
                continue
            recorder.complete(
                "serve.redispatch",
                sim_start=now,
                sim_end=now,
                wall_start=recorder.wall_now(),
                wall_end=recorder.wall_now(),
                category="serve",
                args={"attempt": request.attempts, "reason": reason},
                parent=request.root,
                trace_id=request.trace_id,
            )

    def _batch_cost(
        self, batch: List[PendingRequest], replica: ServingReplica
    ) -> float:
        """Simulated in-enclave service time of one coalesced batch.

        Mirrors the real replica's :meth:`handle_batch` structure:
        one enclave entry/exit pair, one amortized decrypt over all
        request records (stack), one batched forward whose
        ``forward_setup`` kernel-dispatch term is paid once per batch
        rather than per request, and one amortized encrypt over the
        responses (scatter).
        """
        profile = self.pool.profile
        samples = sum(r.n_samples for r in batch)
        flops_per_sample = (
            replica.network.flops(1) * FORWARD_FLOPS_FRACTION
        )
        request_sizes = [len(r.sealed) for r in batch]
        response_sizes = [
            8 * r.n_samples + SEAL_OVERHEAD for r in batch
        ]
        return (
            profile.sgx.transition_time(2)
            + profile.crypto.batched_decrypt_time(request_sizes)
            + profile.inference.batch_seconds(
                flops_per_sample, samples, len(batch)
            )
            + profile.crypto.batched_encrypt_time(response_sizes)
        )

    def _start_batch(
        self, batch: List[PendingRequest], replica: ServingReplica
    ) -> None:
        start = self.clock.now()
        end = start + self._batch_cost(batch, replica)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        record = BatchRecord(
            batch_id=batch_id,
            replica=replica.index,
            generation=replica.generation,
            n_requests=len(batch),
            n_samples=sum(r.n_samples for r in batch),
            dispatched_at=start,
            attempts=max(r.attempts for r in batch) + 1,
        )
        self._batch_records[batch_id] = record
        self.result.batches.append(record)
        replica.busy = True
        replica.inflight = batch
        self._push(end, "done", (replica.index, replica.epoch, batch_id, batch))
        recorder = self.clock.recorder
        if recorder.enabled:
            recorder.count("serve.dispatched", len(batch))
            recorder.observe("serve.batch_size", len(batch))
            recorder.complete(
                "serve.batch",
                sim_start=start,
                sim_end=end,
                wall_start=recorder.wall_now(),
                wall_end=recorder.wall_now(),
                category="serve",
                args={
                    "replica": replica.index,
                    "requests": len(batch),
                    "samples": record.n_samples,
                    "generation": replica.generation,
                },
                sim_lane=REPLICA_LANE_BASE + replica.index,
            )
            for request in batch:
                if request.root is None:
                    continue
                recorder.observe("serve.queue_wait", start - request.arrival)
                recorder.complete(
                    "serve.queue_wait",
                    sim_start=request.arrival,
                    sim_end=start,
                    wall_start=recorder.wall_now(),
                    wall_end=recorder.wall_now(),
                    category="serve",
                    args={"batch": batch_id},
                    parent=request.root,
                    trace_id=request.trace_id,
                )
                recorder.complete(
                    "serve.dispatch",
                    sim_start=start,
                    sim_end=start,
                    wall_start=recorder.wall_now(),
                    wall_end=recorder.wall_now(),
                    category="serve",
                    args={
                        "replica": replica.index,
                        "batch": batch_id,
                        "attempt": request.attempts + 1,
                        "epoch": replica.epoch,
                        "generation": replica.generation,
                    },
                    parent=request.root,
                    trace_id=request.trace_id,
                )
