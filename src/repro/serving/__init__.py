"""The simulated secure inference gateway (untrusted tier).

Production shape for the paper's Section VI inference demo: an
event-driven request scheduler that coalesces sealed client requests
into batches, dispatches them across attested
:class:`~repro.core.serving.SecureInferenceService` enclave replicas,
applies admission control under load, and hot-swaps replicas onto new
model generations as the trainer keeps mirroring weights to PM.

Everything here runs *outside* the enclave: the gateway sees only
sealed requests and sealed replies, and is classified untrusted in the
TCB partitioning (see ``docs/serving.md`` for the threat model).
"""

from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import BatchPolicy, PendingRequest, RequestQueue
from repro.serving.gateway import (
    BatchRecord,
    GatewayResult,
    InferenceGateway,
    ResponseRecord,
)
from repro.serving.replica_pool import ReplicaPool, ServingReplica

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchPolicy",
    "BatchRecord",
    "GatewayResult",
    "InferenceGateway",
    "PendingRequest",
    "ReplicaPool",
    "RequestQueue",
    "ResponseRecord",
    "ServingReplica",
]
