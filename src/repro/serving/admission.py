"""Admission control: bounded queues and backpressure for the gateway.

An open-loop arrival stream has no intrinsic brake — if offered load
exceeds the replica pool's service rate, the request queue grows without
bound and every latency percentile diverges.  The admission controller
caps the queue depth: a request arriving at a full queue is rejected
immediately (the client sees backpressure instead of unbounded delay),
which keeps the latency of admitted requests bounded by
``depth / service_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the gateway's admission decision."""

    #: Maximum number of requests waiting in the gateway queue
    #: (requests already dispatched into a replica don't count).
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


class AdmissionController:
    """Stateful admit/reject decisions plus their accounting."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self.admitted = 0
        self.rejected = 0

    def admit(self, queue_depth: int) -> bool:
        """Whether a new arrival may enter a queue of ``queue_depth``."""
        if queue_depth >= self.policy.max_queue_depth:
            self.rejected += 1
            return False
        self.admitted += 1
        return True
