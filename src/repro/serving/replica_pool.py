"""The enclave replica pool: N attested services on one PM mirror.

Each replica is its own enclave instance running the same service build
(same measurement), loading the served model from the shared encrypted
PM mirror.  The pool owns the *generation* state machine for hot model
reload: the trainer keeps mirroring new weights to PM; the gateway
publishes the newest ``has_snapshot()`` generation; and each replica
atomically swaps onto it **between batches** — a reload never preempts
an in-flight batch, so no request is served by a half-updated model.

Fault sites (see :mod:`repro.faults.registry`):

* ``serve.dispatch`` — checked by the gateway at batch entry;
* ``serve.reload`` — checked here before a replica's ``mirror_in``
  swap, modelling a replica dying between two model generations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.serving import SecureInferenceService
from repro.darknet.network import Network
from repro.faults import plan as faultplan
from repro.sgx.attestation import InferenceSession, QuotingEnclave
from repro.sgx.enclave import Enclave
from repro.simtime.clock import SimClock
from repro.simtime.profiles import ServerProfile


class ServingReplica:
    """One enclave replica plus its scheduling state."""

    def __init__(
        self, index: int, service: SecureInferenceService, generation: int
    ) -> None:
        self.index = index
        self.service = service
        self.generation = generation
        self.healthy = True
        self.busy = False
        #: The batch currently inside the enclave (``None`` when idle);
        #: requeued by the gateway if the replica dies mid-batch.
        self.inflight: Optional[Any] = None
        #: Bumped on every crash; completions carrying a stale epoch are
        #: from a dead incarnation and must be discarded.
        self.epoch = 0

    @property
    def enclave(self) -> Enclave:
        return self.service.enclave

    @property
    def network(self) -> Network:
        return self.service.network


class ReplicaPool:
    """N service replicas over one mirror, with hot-reload generations."""

    def __init__(
        self,
        mirror,
        quoting_enclave: QuotingEnclave,
        clock: SimClock,
        profile: ServerProfile,
        network_factory: Callable[[], Network],
        n_replicas: int,
        input_shape: tuple = (1, 28, 28),
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if not mirror.has_snapshot():
            raise RuntimeError(
                "the PM mirror holds no committed model generation; "
                "mirror_out one before standing up the pool"
            )
        self.mirror = mirror
        self.quoting_enclave = quoting_enclave
        self.clock = clock
        self.profile = profile
        self.network_factory = network_factory
        self.input_shape = input_shape
        self._sessions: Dict[int, InferenceSession] = {}
        #: Newest generation the gateway has published for serving.
        self.target_generation = mirror.stored_iteration()
        self.replicas: List[ServingReplica] = []
        for index in range(n_replicas):
            self.replicas.append(self._spawn(index))

    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> ServingReplica:
        """Build one replica: fresh enclave, model loaded from PM."""
        enclave = Enclave(self.clock, self.profile.sgx)
        service = SecureInferenceService.from_mirror(
            self.mirror,
            self.network_factory(),
            enclave,
            self.quoting_enclave,
            input_shape=self.input_shape,
        )
        for session in self._sessions.values():
            service.install_session(session)
        return ServingReplica(index, service, self.mirror.stored_iteration())

    @property
    def measurement(self) -> bytes:
        """The common build measurement clients attest against."""
        return self.replicas[0].enclave.measurement

    def healthy_replicas(self) -> List[ServingReplica]:
        return [r for r in self.replicas if r.healthy]

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(self, client, session_id: int) -> None:
        """Attest ``client`` against the pool; provision all replicas.

        The first healthy replica runs the in-enclave side of the
        handshake; the resulting session state is then provisioned to
        every peer (replicas share a measurement, so the key transfer is
        enclave-to-enclave).  Replicas spawned later — including repairs
        after a crash — receive all existing sessions at spawn.
        """
        healthy = self.healthy_replicas()
        if not healthy:
            raise RuntimeError("no healthy replica to attest against")
        session = healthy[0].service.open_session(client, session_id)
        self._sessions[session_id] = session
        for replica in self.replicas:
            if replica is not healthy[0]:
                replica.service.install_session(session)

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def publish_generation(self) -> int:
        """Adopt the mirror's newest committed snapshot as the target."""
        stored = self.mirror.stored_iteration()
        if stored > self.target_generation:
            self.target_generation = stored
        return self.target_generation

    def maybe_reload(self, replica: ServingReplica) -> bool:
        """Swap ``replica`` onto the target generation if it's behind.

        Called by the gateway only while the replica has no batch in
        flight, which is what makes the swap atomic w.r.t. serving.
        """
        if replica.generation >= self.target_generation:
            return False
        active = faultplan.ACTIVE
        if active.enabled:
            active.check("serve.reload")
        recorder = self.clock.recorder
        started = self.clock.now()
        old_generation = replica.generation
        self.mirror.mirror_in(replica.network)
        replica.generation = self.mirror.stored_iteration()
        if recorder.enabled:
            span = recorder.begin(
                "serve.reload",
                started,
                category="serve",
                args={
                    "replica": replica.index,
                    "from_generation": old_generation,
                    "to_generation": replica.generation,
                },
                parent=None,
            )
            recorder.end(span, self.clock.now())
            recorder.observe("serve.reload", self.clock.now() - started)
        return True

    # ------------------------------------------------------------------
    # Crash / repair
    # ------------------------------------------------------------------
    def crash(self, index: int) -> ServingReplica:
        """Kill one replica: its enclave (and volatile model) dies."""
        replica = self.replicas[index]
        replica.healthy = False
        replica.busy = False
        replica.epoch += 1
        if not replica.enclave.destroyed:
            replica.enclave.destroy()
        recorder = self.clock.recorder
        if recorder.enabled:
            recorder.instant(
                "serve.replica_crash",
                self.clock.now(),
                category="serve",
                args={"replica": index, "epoch": replica.epoch},
            )
            recorder.count("serve.replica_crashes")
        return replica

    def repair(self, index: int) -> ServingReplica:
        """Respawn a crashed replica from the PM mirror.

        The fresh enclave loads whatever generation the mirror stores
        *now* — necessarily >= the one the dead incarnation served, so
        per-replica generations stay monotone across crashes.
        """
        old = self.replicas[index]
        fresh = self._spawn(index)
        fresh.epoch = old.epoch
        self.replicas[index] = fresh
        recorder = self.clock.recorder
        if recorder.enabled:
            recorder.instant(
                "serve.replica_repair",
                self.clock.now(),
                category="serve",
                args={"replica": index, "generation": fresh.generation},
            )
            recorder.count("serve.replica_repairs")
        return fresh

    def reinstall_session(self, session: InferenceSession) -> None:
        """Install externally re-established session state everywhere."""
        self._sessions[session.session_id] = session
        for replica in self.replicas:
            replica.service.install_session(session)
